#include "src/txn/epoch.h"

#include <algorithm>
#include <chrono>

namespace reactdb {

EpochManager::EpochManager() { row_pool_.reserve(kRowPoolCap); }

EpochManager::~EpochManager() {
  StopTicker();
  DrainAll();
}

void EpochManager::Advance() {
  uint64_t fresh = global_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (on_advance_) on_advance_(fresh);
  uint64_t min_active = MinActiveEpoch();
  std::lock_guard<std::mutex> lock(retire_mu_);
  CollectLocked(min_active);
}

void EpochManager::AdvanceTo(uint64_t epoch) {
  uint64_t cur = global_epoch_.load(std::memory_order_acquire);
  bool advanced = false;
  while (cur < epoch) {
    if (global_epoch_.compare_exchange_weak(cur, epoch,
                                            std::memory_order_acq_rel)) {
      advanced = true;
      break;
    }
  }
  if (advanced && on_advance_) on_advance_(epoch);
  uint64_t min_active = MinActiveEpoch();
  std::lock_guard<std::mutex> lock(retire_mu_);
  CollectLocked(min_active);
}

size_t EpochManager::RegisterSlot() {
  std::lock_guard<std::mutex> lock(slots_mu_);
  slots_.push_back(std::make_unique<std::atomic<uint64_t>>(kQuiescent));
  return slots_.size() - 1;
}

uint64_t EpochManager::EnterEpoch(size_t slot) {
  uint64_t e = current();
  slots_[slot]->store(e, std::memory_order_release);
  return e;
}

void EpochManager::LeaveEpoch(size_t slot) {
  slots_[slot]->store(kQuiescent, std::memory_order_release);
}

void EpochManager::Retire(const Row* row) {
  if (row == nullptr) return;
  std::lock_guard<std::mutex> lock(retire_mu_);
  retired_.push_back(current(), row);
  // Amortized collection to bound memory even without epoch ticks.
  if (retired_.size() % 4096 == 0) {
    CollectLocked(MinActiveEpoch());
  }
}

uint64_t EpochManager::MinActiveEpoch() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  uint64_t min_active = current();
  for (const auto& slot : slots_) {
    uint64_t e = slot->load(std::memory_order_acquire);
    min_active = std::min(min_active, e);
  }
  return min_active;
}

void EpochManager::CollectLocked(uint64_t min_active) {
  // A row retired in epoch e is safe to reuse when every executor is past
  // e + 1 (readers copy the epoch at transaction begin). Safe rows are
  // recycled into the install pool (keeping their element capacity warm)
  // rather than freed; the pool bound keeps a burst from pinning memory.
  while (!retired_.empty() && retired_.front().first + 1 < min_active) {
    const Row* row = retired_.front().second;
    if (row_pool_.size() < kRowPoolCap) {
      row_pool_.push_back(const_cast<Row*>(row));
    } else {
      delete row;
    }
    retired_.pop_front();
  }
}

Row* EpochManager::ExchangeRow(const Row* replaced) {
  Row* fresh = nullptr;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    if (replaced != nullptr) {
      retired_.push_back(current(), replaced);
      // Amortized collection to bound memory even without epoch ticks.
      if (retired_.size() % 4096 == 0) {
        CollectLocked(MinActiveEpoch());
      }
    }
    if (!row_pool_.empty()) {
      fresh = row_pool_.back();
      row_pool_.pop_back();
    }
  }
  return fresh != nullptr ? fresh : new Row();
}

size_t EpochManager::row_pool_size() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return row_pool_.size();
}

void EpochManager::StartTicker(uint64_t interval_ms) {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_running_) return;
  ticker_stop_ = false;
  ticker_running_ = true;
  ticker_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    while (!ticker_stop_) {
      ticker_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms));
      if (ticker_stop_) break;
      lock.unlock();
      Advance();
      lock.lock();
    }
  });
}

void EpochManager::StopTicker() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (!ticker_running_) return;
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  ticker_.join();
  std::lock_guard<std::mutex> lock(ticker_mu_);
  ticker_running_ = false;
}

void EpochManager::DrainAll() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  while (!retired_.empty()) {
    delete retired_.front().second;
    retired_.pop_front();
  }
  for (Row* row : row_pool_) delete row;
  row_pool_.clear();
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

}  // namespace reactdb

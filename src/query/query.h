// Fluent query API over one reactor-local relation.
//
// Stored procedures issue declarative reads/updates against the relations
// encapsulated by the reactor they run on. The API mirrors the SQL subset
// the paper's examples use: point selects, predicate scans, aggregates
// (SUM/COUNT/MIN/MAX), ordered (reverse) range scans with limits, and
// searched updates.
//
//   Select q(table);
//   q.KeyPrefix({Value(w_id), Value(d_id)})
//    .Where(Col("settled") == Lit("N"))
//    .Limit(800)
//    .Reverse();
//   StatusOr<double> exposure = q.Sum(txn, container, "value");
//
// All access is routed through the surrounding SiloTxn, so queries are
// fully transactional.

#ifndef REACTDB_QUERY_QUERY_H_
#define REACTDB_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/query/expr.h"
#include "src/txn/silo_txn.h"

namespace reactdb {

class Select {
 public:
  explicit Select(Table* table) : table_(table) {}

  /// Restricts the scan to keys starting with `prefix` (a prefix of the
  /// primary key columns). Without any restriction the whole relation is
  /// scanned.
  Select& KeyPrefix(Row prefix);
  /// Exact primary-key lookup.
  Select& Key(Row key);
  /// Key range [lo, hi); empty hi = unbounded.
  Select& KeyRange(Row lo, Row hi);
  /// Uses a secondary index with an exact match on its columns.
  Select& Index(const std::string& index_name, Row index_key);
  /// Residual filter predicate.
  Select& Where(Expr predicate);
  /// Caps the number of returned rows (applied after filtering).
  Select& Limit(int64_t n);
  /// Descending key order.
  Select& Reverse();

  /// Materializes matching rows.
  StatusOr<std::vector<Row>> Rows(SiloTxn* txn, uint32_t container) const;
  /// First matching row; NotFound if none.
  StatusOr<Row> One(SiloTxn* txn, uint32_t container) const;
  /// Number of matching rows.
  StatusOr<int64_t> Count(SiloTxn* txn, uint32_t container) const;
  /// SUM of a numeric column over matching rows (0 when empty).
  StatusOr<double> Sum(SiloTxn* txn, uint32_t container,
                       const std::string& column) const;
  StatusOr<Value> Min(SiloTxn* txn, uint32_t container,
                      const std::string& column) const;
  StatusOr<Value> Max(SiloTxn* txn, uint32_t container,
                      const std::string& column) const;

 private:
  enum class AccessPath { kFullScan, kKey, kKeyPrefix, kKeyRange, kIndex };

  Status ForEach(SiloTxn* txn, uint32_t container,
                 const std::function<bool(const Row&)>& cb) const;

  Table* table_;
  AccessPath path_ = AccessPath::kFullScan;
  Row key_lo_;
  Row key_hi_;
  std::string index_name_;
  std::optional<Expr> predicate_;
  int64_t limit_ = -1;
  bool reverse_ = false;
};

/// Searched update: applies `setter` to each matching row and writes it
/// back. Returns the number of updated rows.
class Update {
 public:
  explicit Update(Table* table) : select_(table), table_(table) {}

  Update& Key(Row key) {
    select_.Key(std::move(key));
    return *this;
  }
  Update& KeyPrefix(Row prefix) {
    select_.KeyPrefix(std::move(prefix));
    return *this;
  }
  Update& Index(const std::string& index_name, Row index_key) {
    select_.Index(index_name, std::move(index_key));
    return *this;
  }
  Update& Where(Expr predicate) {
    select_.Where(std::move(predicate));
    return *this;
  }
  /// Sets `column` to the value of `e` evaluated on the pre-update row.
  Update& Set(const std::string& column, Expr e);

  StatusOr<int64_t> Execute(SiloTxn* txn, uint32_t container) const;

 private:
  Select select_;
  Table* table_;
  std::vector<std::pair<std::string, Expr>> sets_;
};

}  // namespace reactdb

#endif  // REACTDB_QUERY_QUERY_H_

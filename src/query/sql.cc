#include "src/query/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace reactdb {

namespace sql_internal {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() && IsIdentChar(sql[i])) ++i;
      tokens.push_back({Token::Kind::kIdent, sql.substr(start, i - start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && i > start &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      tokens.push_back({Token::Kind::kNumber, sql.substr(start, i - start)});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      while (true) {
        if (i >= sql.size()) {
          return Status::InvalidArgument("unterminated string literal");
        }
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            text.push_back('\'');  // escaped quote
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      tokens.push_back({Token::Kind::kString, std::move(text)});
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < sql.size()) {
      std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
        tokens.push_back({Token::Kind::kSymbol, two});
        i += 2;
        continue;
      }
    }
    if (std::string("(),*=<>+-/").find(c) != std::string::npos) {
      tokens.push_back({Token::Kind::kSymbol, std::string(1, c)});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in SQL");
  }
  tokens.push_back({Token::Kind::kEnd, ""});
  return tokens;
}

}  // namespace sql_internal

namespace {

using sql_internal::Token;
using sql_internal::Tokenize;

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }

  bool AtKeyword(const std::string& kw) const {
    return Peek().kind == Token::Kind::kIdent && Upper(Peek().text) == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (!AtKeyword(kw)) return false;
    Next();
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " near '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().kind == Token::Kind::kSymbol && Peek().text == s) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) {
      return Status::InvalidArgument("expected '" + s + "' near '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return Next().text;
  }

  // expr := or_expr
  StatusOr<Expr> ParseExpr() { return ParseOr(); }

  StatusOr<Value> ParseLiteralValue() {
    if (Peek().kind == Token::Kind::kString) return Value(Next().text);
    if (Peek().kind == Token::Kind::kNumber) {
      std::string text = Next().text;
      if (text.find_first_of(".eE") == std::string::npos) {
        return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
      }
      return Value(std::strtod(text.c_str(), nullptr));
    }
    bool negative = false;
    if (AcceptSymbol("-")) negative = true;
    if (Peek().kind == Token::Kind::kNumber) {
      std::string text = Next().text;
      if (text.find_first_of(".eE") == std::string::npos) {
        int64_t v = std::strtoll(text.c_str(), nullptr, 10);
        return Value(negative ? -v : v);
      }
      double v = std::strtod(text.c_str(), nullptr);
      return Value(negative ? -v : v);
    }
    if (AcceptKeyword("TRUE")) return Value(true);
    if (AcceptKeyword("FALSE")) return Value(false);
    if (AcceptKeyword("NULL")) return Value::Null();
    return Status::InvalidArgument("expected literal near '" + Peek().text +
                                   "'");
  }

 private:
  StatusOr<Expr> ParseOr() {
    REACTDB_ASSIGN_OR_RETURN(Expr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      REACTDB_ASSIGN_OR_RETURN(Expr rhs, ParseAnd());
      lhs = std::move(lhs) || std::move(rhs);
    }
    return lhs;
  }

  StatusOr<Expr> ParseAnd() {
    REACTDB_ASSIGN_OR_RETURN(Expr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      REACTDB_ASSIGN_OR_RETURN(Expr rhs, ParseNot());
      lhs = std::move(lhs) && std::move(rhs);
    }
    return lhs;
  }

  StatusOr<Expr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      REACTDB_ASSIGN_OR_RETURN(Expr inner, ParseNot());
      return !std::move(inner);
    }
    return ParseComparison();
  }

  StatusOr<Expr> ParseComparison() {
    REACTDB_ASSIGN_OR_RETURN(Expr lhs, ParseAdditive());
    if (Peek().kind == Token::Kind::kSymbol) {
      std::string op = Peek().text;
      if (op == "=" || op == "<>" || op == "!=" || op == "<" || op == "<=" ||
          op == ">" || op == ">=") {
        Next();
        REACTDB_ASSIGN_OR_RETURN(Expr rhs, ParseAdditive());
        if (op == "=") return std::move(lhs) == std::move(rhs);
        if (op == "<>" || op == "!=") return std::move(lhs) != std::move(rhs);
        if (op == "<") return std::move(lhs) < std::move(rhs);
        if (op == "<=") return std::move(lhs) <= std::move(rhs);
        if (op == ">") return std::move(lhs) > std::move(rhs);
        return std::move(lhs) >= std::move(rhs);
      }
    }
    return lhs;
  }

  StatusOr<Expr> ParseAdditive() {
    REACTDB_ASSIGN_OR_RETURN(Expr lhs, ParseMultiplicative());
    while (Peek().kind == Token::Kind::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      std::string op = Next().text;
      REACTDB_ASSIGN_OR_RETURN(Expr rhs, ParseMultiplicative());
      lhs = op == "+" ? std::move(lhs) + std::move(rhs)
                      : std::move(lhs) - std::move(rhs);
    }
    return lhs;
  }

  StatusOr<Expr> ParseMultiplicative() {
    REACTDB_ASSIGN_OR_RETURN(Expr lhs, ParseUnary());
    while (Peek().kind == Token::Kind::kSymbol &&
           (Peek().text == "*" || Peek().text == "/")) {
      std::string op = Next().text;
      REACTDB_ASSIGN_OR_RETURN(Expr rhs, ParseUnary());
      lhs = op == "*" ? std::move(lhs) * std::move(rhs)
                      : std::move(lhs) / std::move(rhs);
    }
    return lhs;
  }

  StatusOr<Expr> ParseUnary() {
    if (AcceptSymbol("-")) {
      REACTDB_ASSIGN_OR_RETURN(Expr inner, ParseUnary());
      return Lit(int64_t{0}) - std::move(inner);
    }
    return ParsePrimary();
  }

  StatusOr<Expr> ParsePrimary() {
    if (AcceptSymbol("(")) {
      REACTDB_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
      REACTDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (Peek().kind == Token::Kind::kString ||
        Peek().kind == Token::Kind::kNumber) {
      REACTDB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      return Lit(std::move(v));
    }
    if (Peek().kind == Token::Kind::kIdent) {
      std::string word = Upper(Peek().text);
      if (word == "TRUE" || word == "FALSE" || word == "NULL") {
        REACTDB_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        return Lit(std::move(v));
      }
      return Col(Next().text);
    }
    return Status::InvalidArgument("expected expression near '" +
                                   Peek().text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<SqlResult> ExecSelect(Parser* p, SiloTxn* txn,
                               const TableResolver& resolver,
                               uint32_t container) {
  // Projection: * or AGG(col) / COUNT(*).
  enum class Agg { kNone, kSum, kCount, kMin, kMax };
  Agg agg = Agg::kNone;
  std::string agg_column;
  if (p->AcceptSymbol("*")) {
    // plain select
  } else {
    REACTDB_ASSIGN_OR_RETURN(std::string fn, p->ExpectIdent());
    std::string fn_upper = Upper(fn);
    if (fn_upper == "SUM") {
      agg = Agg::kSum;
    } else if (fn_upper == "COUNT") {
      agg = Agg::kCount;
    } else if (fn_upper == "MIN") {
      agg = Agg::kMin;
    } else if (fn_upper == "MAX") {
      agg = Agg::kMax;
    } else {
      return Status::InvalidArgument(
          "only *, SUM, COUNT, MIN, MAX projections are supported");
    }
    REACTDB_RETURN_IF_ERROR(p->ExpectSymbol("("));
    if (agg == Agg::kCount && p->AcceptSymbol("*")) {
      // COUNT(*)
    } else {
      REACTDB_ASSIGN_OR_RETURN(agg_column, p->ExpectIdent());
    }
    REACTDB_RETURN_IF_ERROR(p->ExpectSymbol(")"));
  }
  REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("FROM"));
  REACTDB_ASSIGN_OR_RETURN(std::string table_name, p->ExpectIdent());
  REACTDB_ASSIGN_OR_RETURN(Table * table, resolver(table_name));
  Select sel(table);
  if (p->AcceptKeyword("WHERE")) {
    REACTDB_ASSIGN_OR_RETURN(Expr pred, p->ParseExpr());
    sel.Where(std::move(pred));
  }
  if (p->AcceptKeyword("ORDER")) {
    REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("BY"));
    REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("KEY"));
    if (p->AcceptKeyword("DESC")) {
      sel.Reverse();
    } else {
      (void)p->AcceptKeyword("ASC");
    }
  }
  if (p->AcceptKeyword("LIMIT")) {
    REACTDB_ASSIGN_OR_RETURN(Value n, p->ParseLiteralValue());
    sel.Limit(n.AsInt64());
  }
  SqlResult result;
  switch (agg) {
    case Agg::kNone: {
      REACTDB_ASSIGN_OR_RETURN(result.rows, sel.Rows(txn, container));
      return result;
    }
    case Agg::kSum: {
      REACTDB_ASSIGN_OR_RETURN(double sum, sel.Sum(txn, container, agg_column));
      result.scalar = Value(sum);
      break;
    }
    case Agg::kCount: {
      REACTDB_ASSIGN_OR_RETURN(int64_t n, sel.Count(txn, container));
      result.scalar = Value(n);
      break;
    }
    case Agg::kMin: {
      REACTDB_ASSIGN_OR_RETURN(Value v, sel.Min(txn, container, agg_column));
      result.scalar = std::move(v);
      break;
    }
    case Agg::kMax: {
      REACTDB_ASSIGN_OR_RETURN(Value v, sel.Max(txn, container, agg_column));
      result.scalar = std::move(v);
      break;
    }
  }
  result.has_scalar = true;
  return result;
}

StatusOr<SqlResult> ExecUpdate(Parser* p, SiloTxn* txn,
                               const TableResolver& resolver,
                               uint32_t container) {
  REACTDB_ASSIGN_OR_RETURN(std::string table_name, p->ExpectIdent());
  REACTDB_ASSIGN_OR_RETURN(Table * table, resolver(table_name));
  REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("SET"));
  Update upd(table);
  do {
    REACTDB_ASSIGN_OR_RETURN(std::string column, p->ExpectIdent());
    REACTDB_RETURN_IF_ERROR(p->ExpectSymbol("="));
    REACTDB_ASSIGN_OR_RETURN(Expr e, p->ParseExpr());
    upd.Set(column, std::move(e));
  } while (p->AcceptSymbol(","));
  if (p->AcceptKeyword("WHERE")) {
    REACTDB_ASSIGN_OR_RETURN(Expr pred, p->ParseExpr());
    upd.Where(std::move(pred));
  }
  SqlResult result;
  REACTDB_ASSIGN_OR_RETURN(result.affected, upd.Execute(txn, container));
  return result;
}

StatusOr<SqlResult> ExecInsert(Parser* p, SiloTxn* txn,
                               const TableResolver& resolver,
                               uint32_t container) {
  REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("INTO"));
  REACTDB_ASSIGN_OR_RETURN(std::string table_name, p->ExpectIdent());
  REACTDB_ASSIGN_OR_RETURN(Table * table, resolver(table_name));
  REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("VALUES"));
  SqlResult result;
  do {
    REACTDB_RETURN_IF_ERROR(p->ExpectSymbol("("));
    Row row;
    do {
      REACTDB_ASSIGN_OR_RETURN(Value v, p->ParseLiteralValue());
      row.push_back(std::move(v));
    } while (p->AcceptSymbol(","));
    REACTDB_RETURN_IF_ERROR(p->ExpectSymbol(")"));
    REACTDB_RETURN_IF_ERROR(txn->Insert(table, row, container));
    ++result.affected;
  } while (p->AcceptSymbol(","));
  return result;
}

StatusOr<SqlResult> ExecDelete(Parser* p, SiloTxn* txn,
                               const TableResolver& resolver,
                               uint32_t container) {
  REACTDB_RETURN_IF_ERROR(p->ExpectKeyword("FROM"));
  REACTDB_ASSIGN_OR_RETURN(std::string table_name, p->ExpectIdent());
  REACTDB_ASSIGN_OR_RETURN(Table * table, resolver(table_name));
  Select sel(table);
  if (p->AcceptKeyword("WHERE")) {
    REACTDB_ASSIGN_OR_RETURN(Expr pred, p->ParseExpr());
    sel.Where(std::move(pred));
  }
  REACTDB_ASSIGN_OR_RETURN(std::vector<Row> rows, sel.Rows(txn, container));
  for (const Row& row : rows) {
    REACTDB_RETURN_IF_ERROR(
        txn->Delete(table, table->schema().ExtractKey(row), container));
  }
  SqlResult result;
  result.affected = static_cast<int64_t>(rows.size());
  return result;
}

}  // namespace

namespace sql_internal {

StatusOr<Expr> ParseExpression(const std::string& text) {
  REACTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  REACTDB_ASSIGN_OR_RETURN(Expr e, p.ParseExpr());
  if (p.Peek().kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing tokens after expression");
  }
  return e;
}

}  // namespace sql_internal

StatusOr<SqlResult> ExecuteSql(SiloTxn* txn, const TableResolver& resolver,
                               uint32_t container, const std::string& sql) {
  REACTDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(std::move(tokens));
  SqlResult result;
  if (p.AcceptKeyword("SELECT")) {
    REACTDB_ASSIGN_OR_RETURN(result, ExecSelect(&p, txn, resolver, container));
  } else if (p.AcceptKeyword("UPDATE")) {
    REACTDB_ASSIGN_OR_RETURN(result, ExecUpdate(&p, txn, resolver, container));
  } else if (p.AcceptKeyword("INSERT")) {
    REACTDB_ASSIGN_OR_RETURN(result, ExecInsert(&p, txn, resolver, container));
  } else if (p.AcceptKeyword("DELETE")) {
    REACTDB_ASSIGN_OR_RETURN(result, ExecDelete(&p, txn, resolver, container));
  } else {
    return Status::InvalidArgument(
        "statement must start with SELECT, UPDATE, INSERT, or DELETE");
  }
  if (p.Peek().kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing tokens after statement: '" +
                                   p.Peek().text + "'");
  }
  return result;
}

}  // namespace reactdb

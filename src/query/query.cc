#include "src/query/query.h"

#include <limits>

namespace reactdb {

Select& Select::KeyPrefix(Row prefix) {
  path_ = AccessPath::kKeyPrefix;
  key_lo_ = std::move(prefix);
  return *this;
}

Select& Select::Key(Row key) {
  path_ = AccessPath::kKey;
  key_lo_ = std::move(key);
  return *this;
}

Select& Select::KeyRange(Row lo, Row hi) {
  path_ = AccessPath::kKeyRange;
  key_lo_ = std::move(lo);
  key_hi_ = std::move(hi);
  return *this;
}

Select& Select::Index(const std::string& index_name, Row index_key) {
  path_ = AccessPath::kIndex;
  index_name_ = index_name;
  key_lo_ = std::move(index_key);
  return *this;
}

Select& Select::Where(Expr predicate) {
  if (predicate_.has_value()) {
    predicate_ = std::move(*predicate_) && std::move(predicate);
  } else {
    predicate_ = std::move(predicate);
  }
  return *this;
}

Select& Select::Limit(int64_t n) {
  limit_ = n;
  return *this;
}

Select& Select::Reverse() {
  reverse_ = true;
  return *this;
}

Status Select::ForEach(SiloTxn* txn, uint32_t container,
                       const std::function<bool(const Row&)>& cb) const {
  const Schema& schema = table_->schema();
  int64_t remaining = limit_;
  bool exhausted = false;
  auto filtered = [&](const Row& row) {
    if (predicate_.has_value() && !predicate_->Test(row, schema)) {
      return true;  // continue scan
    }
    if (remaining == 0) {
      exhausted = true;
      return false;
    }
    if (remaining > 0) --remaining;
    bool keep_going = cb(row);
    if (remaining == 0) exhausted = true;
    return keep_going && !exhausted;
  };
  switch (path_) {
    case AccessPath::kKey: {
      StatusOr<Row> row = txn->Get(table_, key_lo_, container);
      if (!row.ok()) {
        if (row.status().IsNotFound()) return Status::OK();
        return row.status();
      }
      if (!predicate_.has_value() || predicate_->Test(row.value(), schema)) {
        cb(row.value());
      }
      return Status::OK();
    }
    case AccessPath::kKeyPrefix:
      return reverse_
                 ? txn->ReverseScanPrefix(table_, key_lo_, -1, filtered,
                                          container)
                 : txn->ScanPrefix(table_, key_lo_, -1, filtered, container);
    case AccessPath::kKeyRange:
      return reverse_ ? txn->ReverseScan(table_, key_lo_, key_hi_, -1,
                                         filtered, container)
                      : txn->Scan(table_, key_lo_, key_hi_, -1, filtered,
                                  container);
    case AccessPath::kIndex: {
      int pos = table_->secondary_pos(index_name_);
      if (pos < 0) {
        return Status::InvalidArgument("no index " + index_name_ + " on " +
                                       table_->name());
      }
      size_t index_pos = static_cast<size_t>(pos);
      return reverse_ ? txn->ReverseScanSecondary(table_, index_pos, key_lo_,
                                                  -1, filtered, container)
                      : txn->ScanSecondary(table_, index_pos, key_lo_, -1,
                                           filtered, container);
    }
    case AccessPath::kFullScan:
      return reverse_
                 ? txn->ReverseScan(table_, {}, {}, -1, filtered, container)
                 : txn->Scan(table_, {}, {}, -1, filtered, container);
  }
  return Status::Internal("bad access path");
}

StatusOr<std::vector<Row>> Select::Rows(SiloTxn* txn,
                                        uint32_t container) const {
  std::vector<Row> rows;
  REACTDB_RETURN_IF_ERROR(ForEach(txn, container, [&rows](const Row& row) {
    rows.push_back(row);
    return true;
  }));
  return rows;
}

StatusOr<Row> Select::One(SiloTxn* txn, uint32_t container) const {
  std::optional<Row> found;
  REACTDB_RETURN_IF_ERROR(ForEach(txn, container, [&found](const Row& row) {
    found = row;
    return false;
  }));
  if (!found.has_value()) {
    return Status::NotFound("no matching row in " + table_->name());
  }
  return *found;
}

StatusOr<int64_t> Select::Count(SiloTxn* txn, uint32_t container) const {
  int64_t n = 0;
  REACTDB_RETURN_IF_ERROR(ForEach(txn, container, [&n](const Row&) {
    ++n;
    return true;
  }));
  return n;
}

StatusOr<double> Select::Sum(SiloTxn* txn, uint32_t container,
                             const std::string& column) const {
  int id = table_->schema().ColumnId(column);
  if (id < 0) {
    return Status::InvalidArgument("unknown column " + column);
  }
  double sum = 0;
  REACTDB_RETURN_IF_ERROR(ForEach(txn, container, [&sum, id](const Row& row) {
    const Value& v = row[static_cast<size_t>(id)];
    if (!v.is_null()) sum += v.AsNumeric();
    return true;
  }));
  return sum;
}

StatusOr<Value> Select::Min(SiloTxn* txn, uint32_t container,
                            const std::string& column) const {
  int id = table_->schema().ColumnId(column);
  if (id < 0) return Status::InvalidArgument("unknown column " + column);
  Value best = Value::Null();
  REACTDB_RETURN_IF_ERROR(ForEach(txn, container, [&best, id](const Row& row) {
    const Value& v = row[static_cast<size_t>(id)];
    if (!v.is_null() && (best.is_null() || v < best)) best = v;
    return true;
  }));
  return best;
}

StatusOr<Value> Select::Max(SiloTxn* txn, uint32_t container,
                            const std::string& column) const {
  int id = table_->schema().ColumnId(column);
  if (id < 0) return Status::InvalidArgument("unknown column " + column);
  Value best = Value::Null();
  REACTDB_RETURN_IF_ERROR(ForEach(txn, container, [&best, id](const Row& row) {
    const Value& v = row[static_cast<size_t>(id)];
    if (!v.is_null() && (best.is_null() || v > best)) best = v;
    return true;
  }));
  return best;
}

Update& Update::Set(const std::string& column, Expr e) {
  sets_.emplace_back(column, std::move(e));
  return *this;
}

StatusOr<int64_t> Update::Execute(SiloTxn* txn, uint32_t container) const {
  const Schema& schema = table_->schema();
  // Resolve target column ids once.
  std::vector<int> ids;
  ids.reserve(sets_.size());
  for (const auto& [column, expr] : sets_) {
    int id = schema.ColumnId(column);
    if (id < 0) return Status::InvalidArgument("unknown column " + column);
    ids.push_back(id);
  }
  // Materialize matches first: updating while scanning would grow the
  // write set mid-scan.
  REACTDB_ASSIGN_OR_RETURN(std::vector<Row> rows, select_.Rows(txn, container));
  for (const Row& row : rows) {
    Row updated = row;
    for (size_t i = 0; i < sets_.size(); ++i) {
      REACTDB_ASSIGN_OR_RETURN(Value v, sets_[i].second.Eval(row, schema));
      updated[static_cast<size_t>(ids[i])] = std::move(v);
    }
    REACTDB_RETURN_IF_ERROR(txn->Update(table_, schema.ExtractKey(row),
                                        std::move(updated), container));
  }
  return static_cast<int64_t>(rows.size());
}

}  // namespace reactdb

// A small SQL front-end for intra-reactor declarative queries.
//
// The paper presents reactor procedures in SQL-flavored pseudocode
// (Fig. 1); this module parses a practical subset of that SQL into the
// query builders of query.h, executed against one reactor's relations:
//
//   SELECT * FROM orders WHERE settled = 'N' ORDER BY KEY DESC LIMIT 800
//   SELECT SUM(value) FROM orders WHERE settled = 'N'
//   SELECT COUNT(*) FROM customer WHERE last = 'BARBARBAR'
//   UPDATE provider_info SET risk = risk * 1.1, time = 42 WHERE id = 0
//   INSERT INTO orders VALUES (17, 450.0, 'N')
//   DELETE FROM orders WHERE settled = 'Y'
//
// Supported expressions: integer/float/string ('...') literals, TRUE/FALSE,
// NULL, column names, comparisons (=, <>, !=, <, <=, >, >=), AND/OR/NOT,
// arithmetic (+ - * /), and parentheses. ORDER BY KEY [ASC|DESC] orders by
// the primary key (the only physical order the storage layer provides).
//
// This is deliberately not a full SQL engine — no joins (cross-reactor
// state is reachable only through asynchronous calls, paper Section 2.1)
// and no subqueries.

#ifndef REACTDB_QUERY_SQL_H_
#define REACTDB_QUERY_SQL_H_

#include <string>
#include <vector>

#include "src/query/query.h"

namespace reactdb {

/// Result of executing one SQL statement.
struct SqlResult {
  /// Rows for plain SELECT.
  std::vector<Row> rows;
  /// Scalar for aggregate SELECT (SUM/COUNT/MIN/MAX).
  Value scalar;
  bool has_scalar = false;
  /// Rows touched by UPDATE/DELETE/INSERT.
  int64_t affected = 0;
};

/// Resolves a relation name to a Table (one reactor's namespace).
using TableResolver = std::function<StatusOr<Table*>(const std::string&)>;

/// Parses and executes `sql` inside `txn` against tables resolved by
/// `resolver`, charging container id `container`.
StatusOr<SqlResult> ExecuteSql(SiloTxn* txn, const TableResolver& resolver,
                               uint32_t container, const std::string& sql);

namespace sql_internal {

// Exposed for tests.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kSymbol, kEnd };
  Kind kind;
  std::string text;
};

StatusOr<std::vector<Token>> Tokenize(const std::string& sql);
/// Parses a standalone expression (tests).
StatusOr<Expr> ParseExpression(const std::string& text);

}  // namespace sql_internal

}  // namespace reactdb

#endif  // REACTDB_QUERY_SQL_H_

// Expression trees for intra-reactor declarative queries.
//
// Declarative querying is supported only within a single reactor (paper
// Section 2.1, concept 2). Expressions are built with a small combinator
// API and evaluated against rows of one relation:
//
//   auto pred = Col("settled") == Lit("N") && Col("value") > Lit(100.0);
//   pred.Eval(row, schema)  // -> Value(bool)
//
// Supported: column refs, literals, comparisons, boolean AND/OR/NOT, and
// +,-,*,/ arithmetic with numeric widening. NULL propagates through
// arithmetic and comparisons; a NULL predicate result is treated as false
// by the query layer.

#ifndef REACTDB_QUERY_EXPR_H_
#define REACTDB_QUERY_EXPR_H_

#include <memory>
#include <string>

#include "src/storage/schema.h"
#include "src/util/statusor.h"
#include "src/util/value.h"

namespace reactdb {

enum class ExprOp : uint8_t {
  kColumn,
  kLiteral,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

/// Immutable expression node. Copyable (shares subtrees).
class Expr {
 public:
  Expr() : op_(ExprOp::kLiteral), literal_(Value::Null()) {}

  static Expr Column(std::string name);
  static Expr Literal(Value v);
  static Expr Binary(ExprOp op, Expr lhs, Expr rhs);
  static Expr Not(Expr inner);

  ExprOp op() const { return op_; }

  /// Evaluates against `row` interpreted by `schema`. Unknown column names
  /// produce InvalidArgument.
  StatusOr<Value> Eval(const Row& row, const Schema& schema) const;

  /// Convenience: evaluates as a predicate; NULL and errors map to false.
  bool Test(const Row& row, const Schema& schema) const;

  std::string ToString() const;

 private:
  ExprOp op_;
  std::string column_name_;
  Value literal_;
  std::shared_ptr<const Expr> lhs_;
  std::shared_ptr<const Expr> rhs_;
};

/// Shorthand constructors used in stored procedures.
inline Expr Col(std::string name) { return Expr::Column(std::move(name)); }
inline Expr Lit(Value v) { return Expr::Literal(std::move(v)); }

inline Expr operator==(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kEq, std::move(a), std::move(b));
}
inline Expr operator!=(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kNe, std::move(a), std::move(b));
}
inline Expr operator<(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kLt, std::move(a), std::move(b));
}
inline Expr operator<=(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kLe, std::move(a), std::move(b));
}
inline Expr operator>(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kGt, std::move(a), std::move(b));
}
inline Expr operator>=(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kGe, std::move(a), std::move(b));
}
inline Expr operator&&(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kAnd, std::move(a), std::move(b));
}
inline Expr operator||(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kOr, std::move(a), std::move(b));
}
inline Expr operator!(Expr a) { return Expr::Not(std::move(a)); }
inline Expr operator+(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kAdd, std::move(a), std::move(b));
}
inline Expr operator-(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kSub, std::move(a), std::move(b));
}
inline Expr operator*(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kMul, std::move(a), std::move(b));
}
inline Expr operator/(Expr a, Expr b) {
  return Expr::Binary(ExprOp::kDiv, std::move(a), std::move(b));
}

}  // namespace reactdb

#endif  // REACTDB_QUERY_EXPR_H_

#include "src/query/expr.h"

namespace reactdb {

Expr Expr::Column(std::string name) {
  Expr e;
  e.op_ = ExprOp::kColumn;
  e.column_name_ = std::move(name);
  return e;
}

Expr Expr::Literal(Value v) {
  Expr e;
  e.op_ = ExprOp::kLiteral;
  e.literal_ = std::move(v);
  return e;
}

Expr Expr::Binary(ExprOp op, Expr lhs, Expr rhs) {
  Expr e;
  e.op_ = op;
  e.lhs_ = std::make_shared<Expr>(std::move(lhs));
  e.rhs_ = std::make_shared<Expr>(std::move(rhs));
  return e;
}

Expr Expr::Not(Expr inner) {
  Expr e;
  e.op_ = ExprOp::kNot;
  e.lhs_ = std::make_shared<Expr>(std::move(inner));
  return e;
}

namespace {

bool IsComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

Value CompareOp(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int c = a.Compare(b);
  switch (op) {
    case ExprOp::kEq:
      return Value(c == 0);
    case ExprOp::kNe:
      return Value(c != 0);
    case ExprOp::kLt:
      return Value(c < 0);
    case ExprOp::kLe:
      return Value(c <= 0);
    case ExprOp::kGt:
      return Value(c > 0);
    case ExprOp::kGe:
      return Value(c >= 0);
    default:
      return Value::Null();
  }
}

StatusOr<Value> ArithmeticOp(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  bool both_int =
      a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64;
  if (a.type() == ValueType::kString || b.type() == ValueType::kString ||
      a.type() == ValueType::kBool || b.type() == ValueType::kBool) {
    if (op == ExprOp::kAdd && a.type() == ValueType::kString &&
        b.type() == ValueType::kString) {
      return Value(a.AsString() + b.AsString());
    }
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  if (both_int) {
    int64_t x = a.AsInt64();
    int64_t y = b.AsInt64();
    switch (op) {
      case ExprOp::kAdd:
        return Value(x + y);
      case ExprOp::kSub:
        return Value(x - y);
      case ExprOp::kMul:
        return Value(x * y);
      case ExprOp::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        return Value(x / y);
      default:
        break;
    }
  }
  double x = a.AsNumeric();
  double y = b.AsNumeric();
  switch (op) {
    case ExprOp::kAdd:
      return Value(x + y);
    case ExprOp::kSub:
      return Value(x - y);
    case ExprOp::kMul:
      return Value(x * y);
    case ExprOp::kDiv:
      if (y == 0) return Status::InvalidArgument("division by zero");
      return Value(x / y);
    default:
      break;
  }
  return Status::Internal("bad arithmetic op");
}

}  // namespace

StatusOr<Value> Expr::Eval(const Row& row, const Schema& schema) const {
  switch (op_) {
    case ExprOp::kColumn: {
      int id = schema.ColumnId(column_name_);
      if (id < 0) {
        return Status::InvalidArgument("unknown column " + column_name_ +
                                       " in " + schema.table_name());
      }
      return row[static_cast<size_t>(id)];
    }
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kNot: {
      REACTDB_ASSIGN_OR_RETURN(Value v, lhs_->Eval(row, schema));
      if (v.is_null()) return Value::Null();
      return Value(!v.AsBool());
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      REACTDB_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
      // Short-circuit on a decided left operand.
      if (!a.is_null()) {
        bool av = a.AsBool();
        if (op_ == ExprOp::kAnd && !av) return Value(false);
        if (op_ == ExprOp::kOr && av) return Value(true);
      }
      REACTDB_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
      if (a.is_null() || b.is_null()) return Value::Null();
      return op_ == ExprOp::kAnd ? Value(a.AsBool() && b.AsBool())
                                 : Value(a.AsBool() || b.AsBool());
    }
    default: {
      REACTDB_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, schema));
      REACTDB_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, schema));
      if (IsComparison(op_)) return CompareOp(op_, a, b);
      return ArithmeticOp(op_, a, b);
    }
  }
}

bool Expr::Test(const Row& row, const Schema& schema) const {
  StatusOr<Value> v = Eval(row, schema);
  if (!v.ok() || v->is_null()) return false;
  if (v->type() != ValueType::kBool) return false;
  return v->AsBool();
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kColumn:
      return column_name_;
    case ExprOp::kLiteral:
      return literal_.ToString();
    case ExprOp::kNot:
      return "NOT (" + lhs_->ToString() + ")";
    default: {
      const char* name = "?";
      switch (op_) {
        case ExprOp::kEq: name = "="; break;
        case ExprOp::kNe: name = "<>"; break;
        case ExprOp::kLt: name = "<"; break;
        case ExprOp::kLe: name = "<="; break;
        case ExprOp::kGt: name = ">"; break;
        case ExprOp::kGe: name = ">="; break;
        case ExprOp::kAnd: name = "AND"; break;
        case ExprOp::kOr: name = "OR"; break;
        case ExprOp::kAdd: name = "+"; break;
        case ExprOp::kSub: name = "-"; break;
        case ExprOp::kMul: name = "*"; break;
        case ExprOp::kDiv: name = "/"; break;
        default: break;
      }
      return "(" + lhs_->ToString() + " " + name + " " + rhs_->ToString() +
             ")";
    }
  }
}

}  // namespace reactdb

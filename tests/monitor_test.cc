// Operational-plane tests (src/obs/ sampler, health watchdog, flight
// recorder, HTTP exporter): time-series rate/window math, health rule
// transitions on synthetic inputs, flight ring wrap + merge order + the
// auto-dump latch, the embedded HTTP server end-to-end over a real socket,
// and the Database surface: a deterministic Ok -> Degraded -> Unhealthy
// watchdog progression under a simulated durability stall, the fsync-latch
// path, same-seed run determinism, and monitoring-off inertness.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/obs/exporter.h"
#include "src/obs/flight.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/runtime/reactdb.h"
#include "src/util/logging.h"

namespace reactdb {
namespace {

namespace fs = std::filesystem;
using client::Database;

// --- TimeSeriesStore ---------------------------------------------------

TEST(TimeSeries, CounterRatesComeFromDeltas) {
  obs::MetricsRegistry reg;
  obs::MetricId ops = reg.Counter("ts_ops_total", "ops");
  reg.Freeze(1);
  obs::TimeSeriesStore store(/*window=*/4);

  reg.Add(0, ops, 10);
  store.Sample(0, reg.Collect());
  reg.Add(0, ops, 20);
  store.Sample(1e6, reg.Collect());  // +20 over 1 s
  reg.Add(0, ops, 5);
  store.Sample(1.5e6, reg.Collect());  // +5 over 0.5 s

  std::vector<obs::SeriesPoint> pts = store.Points("ts_ops_total");
  ASSERT_EQ(3u, pts.size());
  EXPECT_DOUBLE_EQ(10, pts[0].value);
  EXPECT_DOUBLE_EQ(0, pts[0].rate_per_s) << "no previous sample, no rate";
  EXPECT_DOUBLE_EQ(30, pts[1].value);
  EXPECT_DOUBLE_EQ(20, pts[1].rate_per_s);
  EXPECT_DOUBLE_EQ(35, pts[2].value);
  EXPECT_DOUBLE_EQ(10, pts[2].rate_per_s);
  EXPECT_EQ(3u, store.samples_taken());
}

TEST(TimeSeries, WindowWrapsKeepingNewestPoints) {
  obs::MetricsRegistry reg;
  obs::MetricId depth = reg.Gauge("ts_depth", "d");
  reg.Freeze(1);
  obs::TimeSeriesStore store(/*window=*/3);
  for (int i = 0; i < 7; ++i) {
    reg.GaugeSet(0, depth, i);
    store.Sample(i * 1000.0, reg.Collect());
  }
  std::vector<obs::SeriesPoint> pts = store.Points("ts_depth");
  ASSERT_EQ(3u, pts.size());
  EXPECT_DOUBLE_EQ(4, pts[0].value);
  EXPECT_DOUBLE_EQ(6, pts[2].value) << "oldest first, newest last";
}

// A histogram series windows bucket *deltas*: only the observations of the
// retained intervals contribute to the window quantile.
TEST(TimeSeries, HistogramWindowIsDeltaMerge) {
  obs::MetricsRegistry reg;
  obs::MetricId lat = reg.Histo("ts_latency_us", "lat");
  reg.Freeze(1);
  obs::TimeSeriesStore store(/*window=*/2);

  for (int i = 0; i < 100; ++i) reg.Observe(0, lat, 10.0);
  store.Sample(0, reg.Collect());  // delta: 100 x 10us
  for (int i = 0; i < 50; ++i) reg.Observe(0, lat, 1000.0);
  store.Sample(1e5, reg.Collect());  // delta: 50 x 1ms
  for (int i = 0; i < 50; ++i) reg.Observe(0, lat, 2000.0);
  store.Sample(2e5, reg.Collect());  // delta: 50 x 2ms; first sample evicted

  Histogram w = store.WindowHistogram("ts_latency_us");
  EXPECT_EQ(100u, w.count()) << "the 10us interval fell out of the window";
  EXPECT_GT(w.Quantile(0.5), 500.0) << "window p50 reflects only the "
                                       "retained slow intervals";
  std::string json = store.ToJson();
  EXPECT_NE(std::string::npos, json.find("\"ts_latency_us\""));
  EXPECT_NE(std::string::npos, json.find("\"window\""));
}

// --- HealthMonitor (synthetic inputs) ----------------------------------

obs::HealthInputs BaseInputs(double t_us) {
  obs::HealthInputs in;
  in.now_us = t_us;
  in.epoch_current = 10;
  in.executors.resize(2);
  return in;
}

TEST(Health, DurableLagMagnitudeThresholds) {
  obs::HealthMonitor mon{obs::HealthOptions{}};
  obs::HealthInputs in = BaseInputs(0);
  in.durability_enabled = true;
  in.max_appended_epoch = 10;
  in.durable_epoch = 10;
  EXPECT_EQ(obs::HealthState::kOk, mon.Evaluate(in).state);

  in.now_us = 1e5;
  in.max_appended_epoch = 18;  // lag 8 -> degraded
  obs::HealthReport r = mon.Evaluate(in);
  EXPECT_EQ(obs::HealthState::kDegraded, r.state);
  ASSERT_EQ(1u, r.violations.size());
  EXPECT_STREQ("durable_lag", r.violations[0].rule);

  in.now_us = 2e5;
  in.max_appended_epoch = 26;  // lag 16 -> unhealthy
  EXPECT_EQ(obs::HealthState::kUnhealthy, mon.Evaluate(in).state);

  in.now_us = 3e5;
  in.durable_epoch = 26;  // caught up -> recovers
  r = mon.Evaluate(in);
  EXPECT_EQ(obs::HealthState::kOk, r.state);
  EXPECT_EQ(3u, r.transitions) << "ok->degraded->unhealthy->ok";
}

TEST(Health, IoLatchIsImmediatelyUnhealthy) {
  obs::HealthMonitor mon{obs::HealthOptions{}};
  obs::HealthInputs in = BaseInputs(0);
  in.io_halted = true;
  in.io_status = "IOError: injected fsync fault";
  obs::HealthReport r = mon.Evaluate(in);
  EXPECT_EQ(obs::HealthState::kUnhealthy, r.state);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_STREQ("io_error", r.violations[0].rule);
  EXPECT_NE(std::string::npos, r.ToJson().find("injected fsync fault"));
}

// A frozen heartbeat only trips the watchdog with work pending and only
// after the configured streak — an idle executor is not a stalled one.
TEST(Health, ExecutorStallNeedsWorkAndStreak) {
  obs::HealthMonitor mon{obs::HealthOptions{}};  // stall_samples = 2

  // Idle executor, frozen heartbeat: stays healthy forever.
  obs::HealthInputs in = BaseInputs(0);
  in.executors[0].heartbeat = 7;
  in.executors[1].heartbeat = 7;
  for (int s = 0; s < 4; ++s) {
    in.now_us = s * 1e5;
    EXPECT_EQ(obs::HealthState::kOk, mon.Evaluate(in).state);
  }

  // Work appears and the heartbeat stays frozen: streak 1, then trip at 2.
  in.executors[1].has_work = true;
  in.now_us = 5e5;
  EXPECT_EQ(obs::HealthState::kOk, mon.Evaluate(in).state);
  in.now_us = 6e5;
  obs::HealthReport r = mon.Evaluate(in);
  EXPECT_EQ(obs::HealthState::kUnhealthy, r.state);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_STREQ("executor_stall", r.violations[0].rule);

  // The heartbeat moves again: recovers on the next sample.
  in.executors[1].heartbeat = 8;
  in.now_us = 7e5;
  EXPECT_EQ(obs::HealthState::kOk, mon.Evaluate(in).state);
}

TEST(Health, ShedRateSpikesDegrade) {
  obs::HealthMonitor mon{obs::HealthOptions{}};  // 500/s threshold
  obs::HealthInputs in = BaseInputs(0);
  in.shed_total = 0;
  mon.Evaluate(in);
  in.now_us = 1e6;
  in.shed_total = 200;  // 200/s: fine
  EXPECT_EQ(obs::HealthState::kOk, mon.Evaluate(in).state);
  in.now_us = 2e6;
  in.shed_total = 1000;  // 800/s: spike
  obs::HealthReport r = mon.Evaluate(in);
  EXPECT_EQ(obs::HealthState::kDegraded, r.state);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_STREQ("shed_rate", r.violations[0].rule);
}

// --- FlightRecorder ----------------------------------------------------

TEST(Flight, RingWrapsAndDumpMergesTimeOrdered) {
  obs::FlightRecorder flight(/*num_executors=*/2, /*ring_capacity=*/4);
  double now = 0;
  flight.set_clock([&now] { return now; });

  // Interleave executors so the merged dump has to reorder across rings;
  // overflow executor 0's ring so only the newest 4 survive.
  for (int i = 0; i < 6; ++i) {
    now = 10.0 * i;
    flight.Record(0, obs::FlightEventKind::kEpochAdvance, i);
  }
  now = 15;
  flight.Record(1, obs::FlightEventKind::kShed, 99);
  now = 100;
  flight.RecordShared(obs::FlightEventKind::kDurableAdvance, 7);

  EXPECT_EQ(8u, flight.recorded());
  std::string json = flight.DumpJson();
  // Executor 0 kept events 2..5 (t=20..50); the shed at t=15 sorts first.
  EXPECT_EQ(std::string::npos, json.find("\"a\":1"))
      << "overwritten ring slots must not appear";
  size_t shed = json.find("\"shed\"");
  size_t first_epoch = json.find("\"epoch_advance\"");
  size_t durable = json.find("\"durable_advance\"");
  ASSERT_NE(std::string::npos, shed);
  ASSERT_NE(std::string::npos, durable);
  EXPECT_LT(shed, first_epoch) << "t=15 shed precedes t=20 epoch advance";
  EXPECT_LT(first_epoch, durable);
  EXPECT_NE(std::string::npos, json.find("\"executor\":\"shared\""));
}

TEST(Flight, AutoDumpLatchFiresExactlyOnce) {
  obs::FlightRecorder flight(1, 8);
  int dumps = 0;
  std::string last_reason;
  flight.set_dump_sink([&](const char* reason, const std::string& json) {
    ++dumps;
    last_reason = reason;
    EXPECT_FALSE(json.empty());
  });
  flight.RecordShared(obs::FlightEventKind::kIOError, 1);
  EXPECT_TRUE(flight.TriggerAutoDump("io_error"));
  EXPECT_FALSE(flight.TriggerAutoDump("health_unhealthy"))
      << "the latch admits one dump per run";
  EXPECT_EQ(1, dumps);
  EXPECT_EQ("io_error", last_reason);
  EXPECT_TRUE(flight.auto_dump_fired());
}

TEST(Flight, DetailStringsAreTruncatedNotOverrun) {
  obs::FlightRecorder flight(1, 4);
  std::string longsite(200, 'x');
  flight.RecordShared(obs::FlightEventKind::kFaultFire, 1, 2,
                      longsite.c_str());
  std::string json = flight.DumpJson();
  EXPECT_NE(std::string::npos, json.find("xxxx"));
  EXPECT_EQ(std::string::npos, json.find(longsite))
      << "detail is capped at the inline buffer";
}

// --- HttpExporter over a real socket -----------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr));
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(static_cast<ssize_t>(req.size()),
            ::send(fd, req.data(), req.size(), 0));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

TEST(Exporter, ServesHandlersStatusCodesAnd404) {
  obs::HttpExporter exporter;
  exporter.Handle("/metrics", [] {
    obs::HttpExporter::Response r;
    r.body = "reactdb_up 1\n";
    return r;
  });
  exporter.Handle("/healthz", [] {
    obs::HttpExporter::Response r;
    r.status = 503;
    r.content_type = "application/json";
    r.body = "{\"state\":\"unhealthy\"}\n";
    return r;
  });
  ASSERT_TRUE(exporter.Start(0).ok());  // ephemeral port
  ASSERT_NE(0, exporter.bound_port());

  std::string metrics = HttpGet(exporter.bound_port(), "/metrics");
  EXPECT_NE(std::string::npos, metrics.find("200 OK"));
  EXPECT_NE(std::string::npos, metrics.find("reactdb_up 1"));

  std::string healthz = HttpGet(exporter.bound_port(), "/healthz?verbose=1");
  EXPECT_NE(std::string::npos, healthz.find("503"))
      << "unhealthy surfaces as HTTP 503; query strings are stripped";
  EXPECT_NE(std::string::npos, healthz.find("\"unhealthy\""));

  std::string missing = HttpGet(exporter.bound_port(), "/nope");
  EXPECT_NE(std::string::npos, missing.find("404"));
  EXPECT_NE(std::string::npos, missing.find("/metrics"))
      << "404 body lists the registered endpoints";

  EXPECT_EQ(3u, exporter.requests_served());
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

// --- Database end-to-end (SimRuntime) ----------------------------------

Proc BumpProc(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})},
                 {Value(int64_t{0}), Value(row[1].AsInt64() + by)}));
  co_return Value(row[1].AsInt64() + by);
}

std::unique_ptr<ReactorDatabaseDef> MonitorDef(int n) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Counter");
  t.AddSchema(SchemaBuilder("counter")
                  .AddColumn("k", ValueType::kInt64)
                  .AddColumn("v", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("bump", &BumpProc);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
  return def;
}

void LoadCounters(Database* db, int n) {
  REACTDB_CHECK_OK(db->RunDirect([db, n](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      std::string name = "c" + std::to_string(i);
      REACTDB_ASSIGN_OR_RETURN(Table * t, db->FindTable(name, "counter"));
      REACTDB_RETURN_IF_ERROR(
          txn.Insert(t, {Value(int64_t{0}), Value(int64_t{0})},
                     db->FindReactor(name)->container_id()));
    }
    return Status::OK();
  }));
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "reactdb_" + name;
  fs::remove_all(dir);
  return dir;
}

// The tentpole watchdog scenario: durability stalls (auto_flush off — the
// deterministic stand-in for a wedged log device), epochs keep advancing
// with the committed workload, and the durable lag walks through the
// degraded (8) and unhealthy (16) thresholds. The health state must step
// Ok -> Degraded -> Unhealthy in that order, fire exactly one automatic
// flight dump, and surface everything in Stats() and the flight JSON.
TEST(MonitorE2E, WatchdogStepsDegradedThenUnhealthyOnDurabilityStall) {
  std::string dir = FreshDir("monitor_stall");
  auto def = MonitorDef(1);
  Database::Options options = Database::Sim();
  options.data_dir = dir;
  options.log_flush_interval_us = 0;
  options.log_auto_flush = false;  // the stall: nothing ever fsyncs
  options.monitor.enabled = true;
  options.monitor.sample_interval_us = 50;  // virtual-time cadence

  Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(1), options)
                  .ok());
  LoadCounters(&db, 1);

  std::vector<obs::HealthState> progression;
  for (int i = 0; i < 1400; ++i) {
    ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
    obs::HealthState s = db.Health().state;
    if (progression.empty() || progression.back() != s) {
      progression.push_back(s);
    }
  }

  ASSERT_EQ(3u, progression.size())
      << "expected exactly Ok -> Degraded -> Unhealthy";
  EXPECT_EQ(obs::HealthState::kOk, progression[0]);
  EXPECT_EQ(obs::HealthState::kDegraded, progression[1]);
  EXPECT_EQ(obs::HealthState::kUnhealthy, progression[2]);

  obs::HealthReport report = db.Health();
  EXPECT_EQ(2u, report.transitions);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_STREQ("durable_lag", report.violations[0].rule);
  EXPECT_GT(report.samples, 0u);

  // Surfaced through the metric registry...
  obs::StatsSnapshot snap = db.Stats();
  EXPECT_DOUBLE_EQ(2, snap.Value("reactdb_health_state"));
  EXPECT_DOUBLE_EQ(2, snap.Value("reactdb_health_transitions_total"));
  EXPECT_DOUBLE_EQ(
      2, snap.Value("reactdb_health_rule_active", {{"rule", "durable_lag"}}));

  // ...in the time series...
  std::string series = db.Series();
  EXPECT_NE(std::string::npos, series.find("reactdb_txn_committed_total"));
  EXPECT_NE(std::string::npos, series.find("reactdb_log_durable_lag_epochs"));

  // ...and in the flight recorder: the transition events and exactly one
  // automatic dump, written into the data dir.
  std::string flight = db.DumpFlight();
  EXPECT_NE(std::string::npos, flight.find("\"health_transition\""));
  EXPECT_NE(std::string::npos, flight.find("\"epoch_advance\""));
  EXPECT_TRUE(db.runtime()->flight()->auto_dump_fired());
  EXPECT_TRUE(fs::exists(dir + "/flight_health_unhealthy.json"));
  EXPECT_FALSE(fs::exists(dir + "/flight_io_error.json"));

  db.Shutdown();
  fs::remove_all(dir);
}

// An injected fsync failure latches the durability manager; the watchdog
// reports io_error (kUnhealthy) and the latch dump fires once with reason
// io_error — the later health transition must not dump again.
TEST(MonitorE2E, FsyncLatchTripsIoErrorAndDumpsOnce) {
  std::string dir = FreshDir("monitor_fsync");
  auto def = MonitorDef(1);
  Database::Options options = Database::Sim();
  options.data_dir = dir;
  options.log_flush_interval_us = 0;
  options.monitor.enabled = true;
  options.monitor.sample_interval_us = 50;
  options.fault.enabled = true;
  options.fault.seed = 7;
  // Skip the open/bootstrap-era fsyncs, then fail every one: the latch
  // lands deterministically on the first workload-era flush.
  options.fault.file_fsync = {.probability = 1, .after_n = 8};

  Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(1), options)
                  .ok());
  LoadCounters(&db, 1);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  }
  ASSERT_TRUE(db.durability()->halted()) << "fsync fault must latch";

  obs::HealthReport report = db.Health();
  EXPECT_EQ(obs::HealthState::kUnhealthy, report.state);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_STREQ("io_error", report.violations[0].rule);

  std::string flight = db.DumpFlight();
  EXPECT_NE(std::string::npos, flight.find("\"io_error\""));
  EXPECT_NE(std::string::npos, flight.find("\"fault_fire\""));
  EXPECT_NE(std::string::npos, flight.find("log.fsync"));
  EXPECT_TRUE(fs::exists(dir + "/flight_io_error.json"))
      << "the latch dump carries the io_error reason";
  EXPECT_FALSE(fs::exists(dir + "/flight_health_unhealthy.json"))
      << "the dump latch admits exactly one dump";

  db.Shutdown();
  fs::remove_all(dir);
}

// Monitoring under SimRuntime is deterministic: two same-seed runs produce
// byte-identical series JSON and flight-recorder JSON.
TEST(MonitorE2E, SameSeedRunsProduceIdenticalSeriesAndFlight) {
  auto run = [](std::string* series, std::string* flight, int salt) {
    std::string dir = FreshDir("monitor_det" + std::to_string(salt));
    auto def = MonitorDef(2);
    Database::Options options = Database::Sim();
    options.data_dir = dir;
    options.log_flush_interval_us = 0;
    options.monitor.enabled = true;
    options.monitor.sample_interval_us = 25;
    Database db;
    ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(2), options)
                    .ok());
    LoadCounters(&db, 2);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          db.Execute(i % 2 ? "c1" : "c0", "bump", {Value(int64_t{1})}).ok());
    }
    *series = db.Series();
    *flight = db.DumpFlight();
    db.Shutdown();
    fs::remove_all(dir);
  };
  std::string series_a, flight_a, series_b, flight_b;
  run(&series_a, &flight_a, 0);
  run(&series_b, &flight_b, 1);
  ASSERT_FALSE(series_a.empty());
  ASSERT_NE("{}\n", series_a);
  EXPECT_EQ(series_a, series_b) << "virtual-time sampling is deterministic";
  EXPECT_EQ(flight_a, flight_b) << "flight timelines are deterministic";
  EXPECT_NE(std::string::npos, flight_a.find("\"durable_advance\""));
}

// A clean monitored run — even one with absorbed link chaos — stays kOk
// end to end: transient faults that retries hide are not health incidents.
TEST(MonitorE2E, CleanChaosRunStaysHealthy) {
  auto def = MonitorDef(2);
  Database::Options options = Database::Sim();
  options.monitor.enabled = true;
  options.monitor.sample_interval_us = 50;
  options.fault.enabled = true;
  options.fault.seed = 11;
  options.fault.link_delay = {.probability = 0.2};
  options.fault.link_dup = {.probability = 0.1};

  Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(2), options)
                  .ok());
  LoadCounters(&db, 2);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        db.Execute(i % 2 ? "c1" : "c0", "bump", {Value(int64_t{1})}).ok());
  }
  obs::HealthReport report = db.Health();
  EXPECT_EQ(obs::HealthState::kOk, report.state);
  EXPECT_EQ(0u, report.transitions);
  EXPECT_GT(report.samples, 0u);
  EXPECT_FALSE(db.runtime()->flight()->auto_dump_fired());
  // The absorbed chaos is still visible in the black box.
  EXPECT_NE(std::string::npos, db.DumpFlight().find("\"fault_fire\""));
  db.Shutdown();
}

// Monitoring off (the default): no sampler, no series, health pinned kOk,
// and the flight recorder still arms as the always-on black box.
TEST(MonitorE2E, DisabledMonitoringIsInert) {
  auto def = MonitorDef(1);
  Database db;
  ASSERT_TRUE(
      db.Open(def.get(), DeploymentConfig::SharedNothing(1), Database::Sim())
          .ok());
  LoadCounters(&db, 1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  }
  EXPECT_EQ("{}\n", db.Series());
  obs::HealthReport report = db.Health();
  EXPECT_EQ(obs::HealthState::kOk, report.state);
  EXPECT_EQ(0u, report.samples) << "the watchdog never evaluated";
  EXPECT_EQ(nullptr, db.runtime()->series());
  EXPECT_GT(db.runtime()->flight()->recorded(), 0u)
      << "epoch advances land in the always-on flight recorder";
  db.Shutdown();
}

// Thread mode: the sampler is a real background thread; a short run must
// take samples and stay healthy.
TEST(MonitorE2E, ThreadModeSamplerTakesSamples) {
  auto def = MonitorDef(1);
  Database::Options options;  // kThreads
  options.monitor.enabled = true;
  options.monitor.sample_interval_us = 2000;  // 2 ms real time

  Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(1), options)
                  .ok());
  LoadCounters(&db, 1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  }
  // Give the sampler a few intervals.
  for (int spins = 0; spins < 500 && db.Health().samples < 3; ++spins) {
    usleep(1000);
  }
  obs::HealthReport report = db.Health();
  EXPECT_GE(report.samples, 3u);
  EXPECT_EQ(obs::HealthState::kOk, report.state);
  EXPECT_NE(std::string::npos,
            db.Series().find("reactdb_txn_committed_total"));
  db.Shutdown();
}

}  // namespace
}  // namespace reactdb

// Session API tests: pipelined FIFO delivery, window backpressure
// (TrySubmit rejects exactly above max_outstanding), auto-retry convergence
// on smallbank write-write conflicts, invariant conservation across
// concurrent sessions, deterministic shutdown under load, and the Database
// facade running the same client code on both runtimes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/reactdb.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/workloads/smallbank/smallbank.h"

namespace reactdb {
namespace {

std::atomic<int> g_gate{0};

Proc GetCounter(TxnContext& ctx, Row) {
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  co_return row[1];
}

Proc Bump(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})},
                 {Value(int64_t{0}), Value(row[1].AsInt64() + by)}));
  co_return Value(row[1].AsInt64() + by);
}

// slow_bump: burn real CPU time first — lets a later-submitted fast
// transaction on another executor finish earlier.
Proc SlowBump(TxnContext& ctx, Row args) {
  ctx.Compute(args[0].AsNumeric());
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})},
                 {Value(int64_t{0}), Value(row[1].AsInt64() + 1)}));
  co_return Value(row[1].AsInt64() + 1);
}

// gated: parks the executor thread until the test opens g_gate.
Proc Gated(TxnContext& ctx, Row) {
  while (g_gate.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  co_return row[1];
}

std::unique_ptr<ReactorDatabaseDef> CounterDef(int n) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Counter");
  t.AddSchema(SchemaBuilder("counter")
                  .AddColumn("k", ValueType::kInt64)
                  .AddColumn("v", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("get", &GetCounter);
  t.AddProcedure("bump", &Bump);
  t.AddProcedure("slow_bump", &SlowBump);
  t.AddProcedure("gated", &Gated);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(
        def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
  return def;
}

void LoadCounters(RuntimeBase* rt, int n) {
  REACTDB_CHECK_OK(rt->RunDirect([&](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      std::string name = "c" + std::to_string(i);
      REACTDB_ASSIGN_OR_RETURN(Table * t, rt->FindTable(name, "counter"));
      REACTDB_RETURN_IF_ERROR(
          txn.Insert(t, {Value(int64_t{0}), Value(int64_t{0})},
                     rt->FindReactor(name)->container_id()));
    }
    return Status::OK();
  }));
}

// Pipelined submissions complete out of order across executors (the first
// is slow, the rest are fast) but the session must deliver results in
// submission order.
TEST(SessionPipelining, FifoDeliveryAcrossExecutors) {
  auto def = CounterDef(4);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  LoadCounters(&rt, 4);
  ASSERT_TRUE(rt.Start().ok());

  client::Session session(&rt, {.max_outstanding = 8});
  std::mutex mu;
  std::vector<int> delivered;

  // Txn 0: slow (20 ms of compute) on c0. Txns 1..7: fast, on c1..c3 —
  // they finalize long before txn 0 does.
  for (int i = 0; i < 8; ++i) {
    ReactorId reactor =
        rt.ResolveReactor("c" + std::to_string(i == 0 ? 0 : 1 + (i % 3)));
    ProcId proc = rt.ResolveProc(reactor, i == 0 ? "slow_bump" : "bump");
    Row args = i == 0 ? Row{Value(20000.0)} : Row{Value(int64_t{1})};
    client::SessionFuture f = session.Submit(reactor, proc, std::move(args));
    f.Then([&mu, &delivered, i](client::TxnOutcome out) {
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      std::lock_guard<std::mutex> lock(mu);
      delivered.push_back(i);
    });
  }
  session.Drain();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(8u, delivered.size());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(i, delivered[i]) << "delivery must follow submission order";
  }
  EXPECT_EQ(8u, session.stats().committed);
  rt.Stop();
}

// TrySubmit accepts exactly max_outstanding transactions and rejects the
// next with kOverloaded; slots free again once results are consumed.
TEST(SessionBackpressure, TrySubmitRejectsExactlyAboveWindow) {
  constexpr size_t kWindow = 3;
  auto def = CounterDef(1);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  LoadCounters(&rt, 1);
  ASSERT_TRUE(rt.Start().ok());

  g_gate.store(0);
  client::Session session(&rt, {.max_outstanding = kWindow});
  ReactorId c0 = rt.ResolveReactor("c0");
  ProcId gated = rt.ResolveProc(c0, "gated");

  std::vector<client::SessionFuture> futures;
  for (size_t i = 0; i < kWindow; ++i) {
    StatusOr<client::SessionFuture> f = session.TrySubmit(c0, gated, {});
    ASSERT_TRUE(f.ok()) << "submission " << i << " is within the window";
    futures.push_back(*f);
  }
  EXPECT_EQ(kWindow, session.outstanding());

  StatusOr<client::SessionFuture> over = session.TrySubmit(c0, gated, {});
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsOverloaded()) << over.status().ToString();
  EXPECT_EQ(1u, session.stats().overloaded);

  g_gate.store(1, std::memory_order_release);
  for (client::SessionFuture& f : futures) {
    EXPECT_TRUE(f.Wait().ok());
  }
  EXPECT_EQ(0u, session.outstanding());

  // The window breathes: a slot is free again.
  StatusOr<client::SessionFuture> again = session.TrySubmit(c0, gated, {});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Wait().ok());
  rt.Stop();
}

// Write-write conflicts on one smallbank customer: pipelined transfers all
// credit the same destination, so their read-validate windows overlap
// through the cross-container await (cooperative multitasking parks each
// root at the credit call — conflicts arise even on one core). With
// auto-retry enabled every submission eventually commits, exactly once.
TEST(SessionRetry, ConvergesOnSmallbankWriteWriteConflicts) {
  constexpr int64_t kCustomers = 8;
  constexpr int kTransfers = 150;
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  ThreadRuntime rt;
  // Two containers: sources (customers 4..7) live on container 1, the
  // shared credit destination (customer 0) on container 0.
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  ASSERT_TRUE(smallbank::Load(&rt, kCustomers).ok());
  ASSERT_TRUE(rt.Start().ok());
  double initial = smallbank::TotalBalance(&rt, kCustomers).value();
  smallbank::Handles handles = smallbank::ResolveHandles(&rt, kCustomers);
  const std::string dst = smallbank::CustomerName(0);

  client::SessionOptions options;
  options.max_outstanding = 8;
  options.retry.max_attempts = 100;
  client::Session session(&rt, options);
  for (int i = 0; i < kTransfers; ++i) {
    // transfer: [dst_reactor, amount, seq_flag] on the source reactor; the
    // async credit parks the root, letting the next in-flight transfer
    // read the same destination version before this one validates.
    session
        .Submit(handles.customers[static_cast<size_t>(4 + i % 4)],
                smallbank::kTransferProc,
                {Value(dst), Value(1.0), Value(false)})
        .Then([](client::TxnOutcome) {});
  }
  session.Drain();

  client::SessionStats stats = session.stats();
  // Convergence: every submission committed despite conflicts.
  EXPECT_EQ(static_cast<uint64_t>(kTransfers), stats.committed);
  EXPECT_EQ(0u, stats.total_aborted());
  EXPECT_EQ(0u, stats.failed);
  // Eight pipelined transfers crediting one record: overlapping
  // validations (and thus retries) are guaranteed over 150 transactions.
  EXPECT_GT(stats.retried, 0u);

  // Exactly-once despite retries: the destination gained precisely one
  // credit per committed transfer, and money was only moved, not created.
  ProcResult dst_balance =
      rt.Execute(handles.customers[0], smallbank::kBalanceProc, {});
  ASSERT_TRUE(dst_balance.ok());
  EXPECT_DOUBLE_EQ(20000.0 + kTransfers, dst_balance->AsNumeric());
  double total = smallbank::TotalBalance(&rt, kCustomers).value();
  EXPECT_DOUBLE_EQ(initial, total);
  rt.Stop();
}

// Concurrent sessions doing cross-container transfers: the interleaved
// history must conserve the total balance (the smallbank serializability
// invariant).
TEST(SessionInvariants, ConcurrentTransferHistoryConservesBalance) {
  constexpr int64_t kCustomers = 8;
  constexpr int kSessions = 4;
  constexpr int kPerSession = 100;
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  ASSERT_TRUE(smallbank::Load(&rt, kCustomers).ok());
  ASSERT_TRUE(rt.Start().ok());
  double initial = smallbank::TotalBalance(&rt, kCustomers).value();
  smallbank::Handles handles = smallbank::ResolveHandles(&rt, kCustomers);

  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      client::SessionOptions options;
      options.max_outstanding = 4;
      options.retry.max_attempts = 100;
      client::Session session(&rt, options);
      std::string first_error;
      std::mutex err_mu;
      Rng rng(1234 + s);
      for (int i = 0; i < kPerSession; ++i) {
        int64_t src = rng.NextInt(0, kCustomers - 1);
        int64_t dst = rng.NextIntExcluding(0, kCustomers - 1, src);
        // transfer: [dst_reactor, amount, seq_flag] on the source reactor.
        session
            .Submit(handles.customers[src], smallbank::kTransferProc,
                    {Value(smallbank::CustomerName(dst)), Value(1.0),
                     Value(false)})
            .Then([&first_error, &err_mu](client::TxnOutcome out) {
              if (out.ok()) return;
              std::lock_guard<std::mutex> lock(err_mu);
              if (first_error.empty()) {
                first_error = out.status().ToString();
              }
            });
      }
      session.Drain();
      client::SessionStats stats = session.stats();
      committed.fetch_add(stats.committed);
      // With bounded-attempt retry every transfer must land.
      EXPECT_EQ(static_cast<uint64_t>(kPerSession), stats.committed)
          << "cc=" << stats.aborted_cc << " user=" << stats.aborted_user
          << " safety=" << stats.aborted_safety << " failed=" << stats.failed
          << " first_error=" << first_error;
    });
  }
  for (std::thread& t : clients) t.join();

  double total = smallbank::TotalBalance(&rt, kCustomers).value();
  EXPECT_DOUBLE_EQ(initial, total)
      << "transfers move money, never create or destroy it";
  EXPECT_EQ(static_cast<uint64_t>(kSessions * kPerSession), committed.load());
  rt.Stop();
}

// Stop() under load drains: every already-submitted future resolves (no
// hang, nothing abandoned), and post-shutdown submissions fail fast.
TEST(SessionShutdown, StopUnderLoadResolvesEveryFuture) {
  constexpr int kTxns = 300;
  auto def = CounterDef(4);
  client::Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  LoadCounters(db.runtime(), 4);

  auto session = db.CreateSession({.max_outstanding = 64});
  std::atomic<int> resolved{0};
  ReactorId reactors[4];
  ProcId bumps[4];
  for (int i = 0; i < 4; ++i) {
    reactors[i] = db.ResolveReactor("c" + std::to_string(i));
    bumps[i] = db.ResolveProc(reactors[i], "bump");
  }
  for (int i = 0; i < kTxns; ++i) {
    session->Submit(reactors[i % 4], bumps[i % 4], {Value(int64_t{1})})
        .Then([&resolved](client::TxnOutcome out) {
          EXPECT_TRUE(out.ok()) << out.status().ToString();
          resolved.fetch_add(1);
        });
  }
  // Shutdown immediately, with most of the window still in flight.
  db.Shutdown();

  EXPECT_EQ(kTxns, resolved.load()) << "Stop must drain, not abandon";
  EXPECT_EQ(0u, session->outstanding());
  client::SessionStats stats = session->stats();
  EXPECT_EQ(static_cast<uint64_t>(kTxns), stats.committed);

  // After shutdown, submissions fail deterministically instead of hanging.
  client::TxnOutcome late = session->Execute(reactors[0], bumps[0], {});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(StatusCode::kUnavailable, late.status().code());
  EXPECT_EQ(1u, session->stats().failed);
}

// A stopped thread runtime can be restarted: executors come back, and the
// accepting gate re-arms.
TEST(SessionShutdown, ThreadRuntimeRestartsAfterStop) {
  auto def = CounterDef(1);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  LoadCounters(&rt, 1);
  ASSERT_TRUE(rt.Start().ok());
  ASSERT_TRUE(rt.Execute("c0", "bump", {}).ok());
  rt.Stop();
  EXPECT_EQ(StatusCode::kUnavailable,
            rt.Execute("c0", "bump", {}).status().code());
  ASSERT_TRUE(rt.Start().ok());
  ProcResult r = rt.Execute("c0", "bump", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(2, r->AsInt64());
  rt.Stop();
}

// The same client code runs against OS threads and the simulator — only
// Database::Options changes.
TEST(DatabaseFacade, SameClientCodeOnBothRuntimes) {
  for (bool simulated : {false, true}) {
    auto def = CounterDef(2);
    client::Database db;
    ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(2),
                        simulated ? client::Database::Sim()
                                  : client::Database::Threads())
                    .ok());
    LoadCounters(db.runtime(), 2);

    auto session = db.CreateSession({.max_outstanding = 4});
    ReactorId c0 = db.ResolveReactor("c0");
    ProcId bump = db.ResolveProc(c0, "bump");
    std::vector<client::SessionFuture> futures;
    for (int i = 0; i < 10; ++i) {
      futures.push_back(session->Submit(c0, bump, {Value(int64_t{1})}));
    }
    int64_t last = 0;
    for (client::SessionFuture& f : futures) {
      client::TxnOutcome out = f.Wait();
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      last = out.result->AsInt64();
    }
    EXPECT_EQ(10, last) << (simulated ? "sim" : "threads");
    client::SessionStats stats = session->stats();
    EXPECT_EQ(10u, stats.committed);
    EXPECT_EQ(10u, stats.latency_us.count());

    ProcResult check = db.Execute("c0", "get", {});
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(10, check->AsInt64());
    session.reset();
    db.Shutdown();
    // Post-shutdown submissions fail fast on either runtime.
    EXPECT_EQ(StatusCode::kUnavailable,
              db.Execute(c0, bump, {}).status().code());
  }
}

}  // namespace
}  // namespace reactdb

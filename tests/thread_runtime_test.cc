// ThreadRuntime-focused tests: concurrent clients across all deployment
// strategies, MPL-1 serialization, fire-and-forget completion semantics,
// and harness-level invariants under the real-thread scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>

#include "src/runtime/reactdb.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace reactdb {
namespace {

Proc GetCounter(TxnContext& ctx, Row) {
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  co_return row[1];
}

Proc Bump(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})},
                 {Value(int64_t{0}), Value(row[1].AsInt64() + by)}));
  co_return Value(row[1].AsInt64() + by);
}

// bump_pair: bump a remote counter then the local one, awaiting both.
Proc BumpPair(TxnContext& ctx, Row args) {
  Future remote = ctx.CallOn(args[0].AsString(), "bump", {Value(int64_t{1})});
  Future local =
      ctx.CallOn(ctx.reactor_name(), "bump", {Value(int64_t{1})});
  ProcResult l = co_await local;
  REACTDB_CO_RETURN_IF_ERROR(l.status());
  ProcResult r = co_await remote;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(int64_t{2});
}

// fire_and_forget: bumps a remote counter without awaiting the future; the
// runtime must still synchronize completion before commit (Section 2.2.3).
Proc FireAndForget(TxnContext& ctx, Row args) {
  ctx.CallOn(args[0].AsString(), "bump", {Value(int64_t{1})});
  co_return Value(int64_t{1});
}

std::unique_ptr<ReactorDatabaseDef> CounterDef(int n) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Counter");
  t.AddSchema(SchemaBuilder("counter")
                  .AddColumn("k", ValueType::kInt64)
                  .AddColumn("v", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("get", &GetCounter);
  t.AddProcedure("bump", &Bump);
  t.AddProcedure("bump_pair", &BumpPair);
  t.AddProcedure("fire_and_forget", &FireAndForget);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
  return def;
}

Status LoadCounters(RuntimeBase* rt, int n) {
  return rt->RunDirect([rt, n](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      std::string name = "c" + std::to_string(i);
      REACTDB_ASSIGN_OR_RETURN(Table * t, rt->FindTable(name, "counter"));
      REACTDB_RETURN_IF_ERROR(
          txn.Insert(t, {Value(int64_t{0}), Value(int64_t{0})},
                     rt->FindReactor(name)->container_id()));
    }
    return Status::OK();
  });
}

int64_t CounterValue(ThreadRuntime* rt, int i) {
  ProcResult v = rt->Execute("c" + std::to_string(i), "get", {});
  REACTDB_CHECK(v.ok());
  return v->AsInt64();
}

class ThreadDeploymentTest : public ::testing::TestWithParam<int> {
 protected:
  DeploymentConfig Deployment() const {
    switch (GetParam()) {
      case 0:
        return DeploymentConfig::SharedNothing(2);
      case 1:
        return DeploymentConfig::SharedEverythingWithAffinity(2);
      default:
        return DeploymentConfig::SharedEverythingWithoutAffinity(2);
    }
  }
};

TEST_P(ThreadDeploymentTest, ConcurrentBumpsNeverLoseUpdates) {
  auto def = CounterDef(4);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), Deployment()).ok());
  ASSERT_TRUE(LoadCounters(&rt, 4).ok());
  ASSERT_TRUE(rt.Start().ok());
  constexpr int kClients = 4;
  constexpr int kTxnsEach = 40;
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&rt, t, &committed] {
      Rng rng(500 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        int target = static_cast<int>(rng.NextInt(0, 3));
        ProcResult r = rt.Execute("c" + std::to_string(target), "bump",
                                  {Value(int64_t{1})});
        if (r.ok()) {
          committed++;
        } else {
          EXPECT_TRUE(r.status().IsAborted()) << r.status();
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  int64_t total = 0;
  for (int i = 0; i < 4; ++i) total += CounterValue(&rt, i);
  EXPECT_EQ(committed.load(), total);
  rt.Stop();
}

TEST_P(ThreadDeploymentTest, CrossReactorPairsStayAtomic) {
  auto def = CounterDef(4);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), Deployment()).ok());
  ASSERT_TRUE(LoadCounters(&rt, 4).ok());
  ASSERT_TRUE(rt.Start().ok());
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&rt, t, &committed] {
      Rng rng(700 + t);
      for (int i = 0; i < 30; ++i) {
        int a = static_cast<int>(rng.NextInt(0, 3));
        int b = static_cast<int>(rng.NextIntExcluding(0, 3, a));
        ProcResult r = rt.Execute("c" + std::to_string(a), "bump_pair",
                                  {Value("c" + std::to_string(b))});
        if (r.ok()) committed++;
      }
    });
  }
  for (auto& c : clients) c.join();
  int64_t total = 0;
  for (int i = 0; i < 4; ++i) total += CounterValue(&rt, i);
  // Each committed pair bumps exactly two counters by one.
  EXPECT_EQ(2 * committed.load(), total);
  rt.Stop();
}

INSTANTIATE_TEST_SUITE_P(Deployments, ThreadDeploymentTest,
                         ::testing::Values(0, 1, 2));

TEST(ThreadRuntimeSemantics, FireAndForgetCompletesBeforeCommit) {
  auto def = CounterDef(2);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  ASSERT_TRUE(LoadCounters(&rt, 2).ok());
  ASSERT_TRUE(rt.Start().ok());
  for (int i = 0; i < 10; ++i) {
    ProcResult r = rt.Execute("c0", "fire_and_forget", {Value("c1")});
    ASSERT_TRUE(r.ok()) << r.status();
  }
  // Every un-awaited remote bump must be durable at commit time.
  EXPECT_EQ(10, CounterValue(&rt, 1));
  rt.Stop();
}

TEST(ThreadRuntimeSemantics, MplOneSerializesPerExecutor) {
  auto def = CounterDef(1);
  ThreadRuntime rt;
  DeploymentConfig dc = DeploymentConfig::SharedEverythingWithAffinity(1);
  ASSERT_TRUE(rt.Bootstrap(def.get(), dc).ok());
  ASSERT_TRUE(LoadCounters(&rt, 1).ok());
  ASSERT_TRUE(rt.Start().ok());
  // With one executor at MPL 1 and purely local transactions, concurrent
  // clients are admitted one at a time: zero OCC aborts, zero lost updates.
  constexpr int kClients = 4;
  constexpr int kTxnsEach = 25;
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&rt, &failed] {
      for (int i = 0; i < kTxnsEach; ++i) {
        if (!rt.Execute("c0", "bump", {Value(int64_t{1})}).ok()) failed++;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(0, failed.load());
  EXPECT_EQ(kClients * kTxnsEach, CounterValue(&rt, 0));
  rt.Stop();
}

TEST(ThreadRuntimeSemantics, SubmitIsNonBlocking) {
  auto def = CounterDef(1);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  ASSERT_TRUE(LoadCounters(&rt, 1).ok());
  ASSERT_TRUE(rt.Start().ok());
  std::promise<void> all_done;
  std::atomic<int> remaining{20};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rt.Submit("c0", "bump", {Value(int64_t{1})},
                          [&](ProcResult r, const RootTxn&) {
                            EXPECT_TRUE(r.ok());
                            if (remaining.fetch_sub(1) == 1) {
                              all_done.set_value();
                            }
                          })
                    .ok());
  }
  all_done.get_future().wait();
  EXPECT_EQ(20, CounterValue(&rt, 0));
  rt.Stop();
}

TEST(ThreadRuntimeSemantics, EpochTickerReclaimsRetiredRows) {
  auto def = CounterDef(1);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  ASSERT_TRUE(LoadCounters(&rt, 1).ok());
  ASSERT_TRUE(rt.Start().ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(rt.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  }
  // Updates retired 300 row versions; the ticker (10ms) plus quiescent
  // executors must reclaim them.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  rt.epochs()->Advance();
  rt.epochs()->Advance();
  EXPECT_LT(rt.epochs()->retired_count(), 10u);
  rt.Stop();
}

}  // namespace
}  // namespace reactdb

// Smallbank integration tests: money conservation under every
// multi-transfer formulation, user aborts, and cross-runtime agreement.
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/sim_driver.h"
#include "src/runtime/reactdb.h"
#include "src/util/rng.h"
#include "src/workloads/smallbank/smallbank.h"

namespace reactdb {
namespace {

using smallbank::CustomerName;
using smallbank::Formulation;
using smallbank::MakeMultiTransfer;

constexpr int64_t kCustomers = 64;

class SmallbankSimTest
    : public ::testing::TestWithParam<Formulation> {
 protected:
  void SetUp() override {
    def_ = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def_.get(), kCustomers);
    rt_ = std::make_unique<SimRuntime>();
    ASSERT_TRUE(
        rt_->Bootstrap(def_.get(), DeploymentConfig::SharedNothing(8)).ok());
    ASSERT_TRUE(smallbank::Load(rt_.get(), kCustomers).ok());
  }

  std::unique_ptr<ReactorDatabaseDef> def_;
  std::unique_ptr<SimRuntime> rt_;
};

TEST_P(SmallbankSimTest, MultiTransferConservesMoney) {
  double before = smallbank::TotalBalance(rt_.get(), kCustomers).value();
  // Destinations on distinct containers (64 reactors / 8 containers).
  std::vector<std::string> dsts;
  for (int i = 1; i <= 7; ++i) dsts.push_back(CustomerName(i * 8));
  auto call = MakeMultiTransfer(GetParam(), 25.0, dsts);
  ProcResult r = rt_->Execute(CustomerName(0), call.proc, call.args);
  ASSERT_TRUE(r.ok()) << r.status();
  double after = smallbank::TotalBalance(rt_.get(), kCustomers).value();
  EXPECT_NEAR(before, after, 1e-6);
  // Destination accounts each gained 25.
  ProcResult bal = rt_->Execute(CustomerName(8), "balance", {});
  ASSERT_TRUE(bal.ok());
  EXPECT_NEAR(20025.0, bal->AsNumeric(), 1e-6);
  // Source lost 7 * 25.
  ProcResult src = rt_->Execute(CustomerName(0), "balance", {});
  ASSERT_TRUE(src.ok());
  EXPECT_NEAR(20000.0 - 175.0, src->AsNumeric(), 1e-6);
}

TEST_P(SmallbankSimTest, InsufficientFundsAbortsWholeTransaction) {
  std::vector<std::string> dsts = {CustomerName(8), CustomerName(16)};
  // Source savings is 10000; two transfers of 6000 exceed it for every
  // formulation (opt debits 12000 at once).
  auto call = MakeMultiTransfer(GetParam(), 6000.0, dsts);
  ProcResult r = rt_->Execute(CustomerName(0), call.proc, call.args);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUserAbort()) << r.status();
  // No partial effects.
  double after = smallbank::TotalBalance(rt_.get(), kCustomers).value();
  EXPECT_NEAR(20000.0 * kCustomers, after, 1e-6);
  ProcResult dst = rt_->Execute(CustomerName(8), "balance", {});
  EXPECT_NEAR(20000.0, dst->AsNumeric(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllFormulations, SmallbankSimTest,
    ::testing::Values(Formulation::kFullySync, Formulation::kPartiallyAsync,
                      Formulation::kFullyAsync, Formulation::kOpt),
    [](const ::testing::TestParamInfo<Formulation>& info) {
      std::string name = smallbank::FormulationName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SmallbankThreadRuntime, TransferAndBalance) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), 16);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  ASSERT_TRUE(smallbank::Load(&rt, 16).ok());
  ASSERT_TRUE(rt.Start().ok());
  for (int i = 0; i < 20; ++i) {
    ProcResult r =
        rt.Execute(CustomerName(i % 16), "transfer",
                   {Value(CustomerName((i + 5) % 16)), Value(10.0),
                    Value(false)});
    ASSERT_TRUE(r.ok()) << r.status();
  }
  double total = smallbank::TotalBalance(&rt, 16).value();
  EXPECT_NEAR(20000.0 * 16, total, 1e-6);
  rt.Stop();
}

TEST(SmallbankThreadRuntime, ConcurrentClientsConserveMoney) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), 16);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(),
                           DeploymentConfig::SharedEverythingWithAffinity(4))
                  .ok());
  ASSERT_TRUE(smallbank::Load(&rt, 16).ok());
  ASSERT_TRUE(rt.Start().ok());
  constexpr int kThreads = 4;
  constexpr int kTxnsEach = 50;
  std::vector<std::thread> clients;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&rt, t, &committed] {
      Rng rng(1000 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        int64_t src = rng.NextInt(0, 15);
        int64_t dst = rng.NextIntExcluding(0, 15, src);
        ProcResult r = rt.Execute(CustomerName(src), "transfer",
                                  {Value(CustomerName(dst)), Value(1.0),
                                   Value(false)});
        if (r.ok()) committed++;
        // OCC aborts acceptable under contention; money must still balance.
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_GT(committed.load(), 0);
  double total = smallbank::TotalBalance(&rt, 16).value();
  EXPECT_NEAR(20000.0 * 16, total, 1e-6);
  rt.Stop();
}

TEST(SmallbankDriver, ClosedLoopRun) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), 32);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  ASSERT_TRUE(smallbank::Load(&rt, 32).ok());
  harness::DriverOptions options;
  options.num_workers = 2;
  options.num_epochs = 5;
  options.epoch_us = 5000;
  options.warmup_us = 2000;
  Rng rng(3);
  auto gen = [&rng](int worker) {
    harness::Request req;
    int64_t src = worker * 16 + rng.NextInt(0, 15);
    int64_t dst = (src + 1 + rng.NextInt(0, 29)) % 32;
    req.reactor = CustomerName(src);
    req.proc = "transfer";
    req.args = {Value(CustomerName(dst)), Value(1.0), Value(false)};
    return req;
  };
  harness::DriverResult result = harness::RunClosedLoop(&rt, options, gen);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.ThroughputTps(), 0.0);
  EXPECT_GT(result.mean_latency_us, 0.0);
  double total = smallbank::TotalBalance(&rt, 32).value();
  EXPECT_NEAR(20000.0 * 32, total, 1e-6);
}

}  // namespace
}  // namespace reactdb

// Wire-format tests: exact Value/Row round-trips through the transport
// codec, message encode/decode for all four transport message types, and
// truncation/corruption error paths. Also covers the key-codec extremes
// fixed alongside (int64 <-> double conversion at the ends of the range).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "src/transport/message.h"
#include "src/util/keycodec.h"
#include "src/util/wire.h"

namespace reactdb {
namespace {

Value RoundTrip(const Value& v) {
  std::string buf;
  wire::Writer w(&buf);
  wire::EncodeValue(v, &w);
  wire::Reader r(buf);
  StatusOr<Value> decoded = wire::DecodeValue(&r);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(r.exhausted());
  return decoded.value_or(Value("<decode failed>"));
}

TEST(WireValue, RoundTripsEveryVariant) {
  EXPECT_EQ(ValueType::kNull, RoundTrip(Value::Null()).type());
  EXPECT_EQ(Value(true), RoundTrip(Value(true)));
  EXPECT_EQ(Value(false), RoundTrip(Value(false)));
  EXPECT_EQ(Value(int64_t{0}), RoundTrip(Value(int64_t{0})));
  EXPECT_EQ(Value(int64_t{-1}), RoundTrip(Value(int64_t{-1})));
  EXPECT_EQ(Value(3.25), RoundTrip(Value(3.25)));
  EXPECT_EQ(Value("hello"), RoundTrip(Value("hello")));
  // Type is preserved, not just comparison equality: int64 5 and double 5.0
  // compare equal but must decode back to their own variant.
  EXPECT_EQ(ValueType::kInt64, RoundTrip(Value(int64_t{5})).type());
  EXPECT_EQ(ValueType::kDouble, RoundTrip(Value(5.0)).type());
}

TEST(WireValue, RoundTripsIntegerExtremes) {
  for (int64_t v : {std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::min() + 1, int64_t{-1},
                    int64_t{0}, int64_t{1},
                    std::numeric_limits<int64_t>::max() - 1,
                    std::numeric_limits<int64_t>::max()}) {
    Value decoded = RoundTrip(Value(v));
    ASSERT_EQ(ValueType::kInt64, decoded.type());
    EXPECT_EQ(v, decoded.AsInt64());
  }
}

TEST(WireValue, RoundTripsDoubleBitPatterns) {
  for (double d : {0.0, -0.0, 1.5, -1.5e300, 5e-324,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    Value decoded = RoundTrip(Value(d));
    ASSERT_EQ(ValueType::kDouble, decoded.type());
    EXPECT_EQ(std::signbit(d), std::signbit(decoded.AsDouble()));
    EXPECT_EQ(d, decoded.AsDouble());
  }
  // NaN round-trips as NaN (bit-pattern transport, no double conversion).
  Value nan = RoundTrip(Value(std::nan("")));
  ASSERT_EQ(ValueType::kDouble, nan.type());
  EXPECT_TRUE(std::isnan(nan.AsDouble()));
}

TEST(WireValue, RoundTripsAwkwardStrings) {
  for (const std::string& s :
       {std::string(), std::string("plain"), std::string("embedded\0nul", 12),
        std::string("\0\0\0", 3), std::string(100000, 'x'),
        std::string("\xff\xfe utf-8 caf\xc3\xa9")}) {
    Value decoded = RoundTrip(Value(s));
    ASSERT_EQ(ValueType::kString, decoded.type());
    EXPECT_EQ(s, decoded.AsString());
  }
}

TEST(WireRow, RoundTripsMixedRow) {
  Row row = {Value::Null(), Value(true), Value(int64_t{-77}), Value(2.5),
             Value("dst_customer_00042")};
  StatusOr<Row> decoded = wire::DecodeRowFromString(
      wire::EncodeRowToString(row));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(row.size(), decoded->size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i].type(), (*decoded)[i].type()) << "cell " << i;
    EXPECT_EQ(row[i], (*decoded)[i]) << "cell " << i;
  }
  // Empty row.
  StatusOr<Row> empty = wire::DecodeRowFromString(wire::EncodeRowToString({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(WireRow, RejectsTruncationAndTrailingBytes) {
  std::string buf = wire::EncodeRowToString({Value(int64_t{1}), Value("abc")});
  // Every strict prefix must fail cleanly, never read out of bounds.
  for (size_t len = 0; len < buf.size(); ++len) {
    EXPECT_FALSE(wire::DecodeRowFromString(buf.substr(0, len)).ok())
        << "prefix length " << len;
  }
  EXPECT_FALSE(wire::DecodeRowFromString(buf + "x").ok());
  // A row header claiming more cells than the buffer can hold is rejected
  // before any allocation.
  std::string bogus;
  wire::Writer w(&bogus);
  w.PutU32(0xfffffff0u);
  EXPECT_FALSE(wire::DecodeRowFromString(bogus).ok());
}

TEST(WireMessage, SubmitRequestRoundTrips) {
  transport::SubmitRequest m;
  m.root_id = 42;
  m.reactor = ReactorId{7};
  m.proc = ProcId{3};
  m.args = {Value(1.0), Value("dest")};
  StatusOr<transport::Message> decoded =
      transport::DecodeMessage(transport::EncodeMessage(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  auto& out = std::get<transport::SubmitRequest>(*decoded);
  EXPECT_EQ(42u, out.root_id);
  EXPECT_EQ(ReactorId{7}, out.reactor);
  EXPECT_EQ(ProcId{3}, out.proc);
  EXPECT_EQ(0, CompareRows(m.args, out.args));
}

TEST(WireMessage, CallRequestRoundTrips) {
  transport::CallRequest m;
  m.root_id = 99;
  m.call_id = 1234;
  m.subtxn_id = 5;
  m.reactor = ReactorId{2048};
  m.proc = ProcId{1};
  m.args = {Value(int64_t{-5}), Value::Null()};
  StatusOr<transport::Message> decoded =
      transport::DecodeMessage(transport::EncodeMessage(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  auto& out = std::get<transport::CallRequest>(*decoded);
  EXPECT_EQ(99u, out.root_id);
  EXPECT_EQ(1234u, out.call_id);
  EXPECT_EQ(5u, out.subtxn_id);
  EXPECT_EQ(ReactorId{2048}, out.reactor);
  EXPECT_EQ(ProcId{1}, out.proc);
  EXPECT_EQ(0, CompareRows(m.args, out.args));
}

TEST(WireMessage, CallResponseCarriesResultsAndErrors) {
  ProcResult ok_result{Value(123.5)};
  transport::CallResponse ok_msg =
      transport::CallResponse::FromResult(7, 8, ok_result);
  StatusOr<transport::Message> decoded =
      transport::DecodeMessage(transport::EncodeMessage(ok_msg));
  ASSERT_TRUE(decoded.ok());
  ProcResult round = std::get<transport::CallResponse>(*decoded).ToResult();
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(Value(123.5), round.value());

  ProcResult err{Status::UserAbort("insufficient funds")};
  transport::CallResponse err_msg =
      transport::CallResponse::FromResult(7, 9, err);
  decoded = transport::DecodeMessage(transport::EncodeMessage(err_msg));
  ASSERT_TRUE(decoded.ok());
  round = std::get<transport::CallResponse>(*decoded).ToResult();
  EXPECT_TRUE(round.status().IsUserAbort());
  EXPECT_EQ("insufficient funds", round.status().message());
}

TEST(WireMessage, CommitVoteRoundTrips) {
  transport::CommitVote m;
  m.root_id = 11;
  m.container = 3;
  m.commit = false;
  StatusOr<transport::Message> decoded =
      transport::DecodeMessage(transport::EncodeMessage(m));
  ASSERT_TRUE(decoded.ok());
  auto& out = std::get<transport::CommitVote>(*decoded);
  EXPECT_EQ(11u, out.root_id);
  EXPECT_EQ(3u, out.container);
  EXPECT_FALSE(out.commit);
}

TEST(WireMessage, RejectsGarbage) {
  EXPECT_FALSE(transport::DecodeMessage("").ok());
  EXPECT_FALSE(transport::DecodeMessage("\x09garbage").ok());
  std::string valid = transport::EncodeMessage(transport::CommitVote{});
  EXPECT_FALSE(transport::DecodeMessage(valid.substr(0, 5)).ok());
  EXPECT_FALSE(transport::DecodeMessage(valid + "\x01").ok());
}

// The key codec (ordered encoding) converts int64 keys through double; the
// conversion is saturating so keys at the ends of the range no longer hit
// undefined behavior and round-trip exactly.
TEST(KeyCodecExtremes, Int64BoundsRoundTrip) {
  for (int64_t v : {std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::min() + 1,
                    std::numeric_limits<int64_t>::max() - 1,
                    std::numeric_limits<int64_t>::max()}) {
    StatusOr<Row> decoded = DecodeKey(EncodeKey({Value(v)}));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(1u, decoded->size());
    EXPECT_EQ(v, (*decoded)[0].AsInt64()) << v;
  }
}

}  // namespace
}  // namespace reactdb

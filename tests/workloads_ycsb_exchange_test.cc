// YCSB and exchange workload integration tests.
#include <gtest/gtest.h>

#include <memory>

#include "src/runtime/reactdb.h"
#include "src/util/logging.h"
#include "src/workloads/exchange/exchange.h"
#include "src/workloads/ycsb/ycsb.h"

namespace reactdb {
namespace {

// --- YCSB ------------------------------------------------------------

class YcsbTest : public ::testing::Test {
 protected:
  static constexpr int64_t kKeys = 40;

  void SetUp() override {
    def_ = std::make_unique<ReactorDatabaseDef>();
    ycsb::BuildDef(def_.get(), kKeys);
    rt_ = std::make_unique<SimRuntime>();
    ASSERT_TRUE(rt_->Bootstrap(def_.get(), DeploymentConfig::SharedNothing(4))
                    .ok());
    ASSERT_TRUE(ycsb::Load(rt_.get(), kKeys, /*payload_size=*/8).ok());
  }

  std::unique_ptr<ReactorDatabaseDef> def_;
  std::unique_ptr<SimRuntime> rt_;
};

TEST_F(YcsbTest, SingleUpdateRotatesPayload) {
  std::string before = ycsb::ReadPayload(rt_.get(), 3).value();
  ProcResult r = rt_->Execute(ycsb::KeyName(3), "update", {Value(int64_t{1})});
  ASSERT_TRUE(r.ok()) << r.status();
  std::string after = ycsb::ReadPayload(rt_.get(), 3).value();
  EXPECT_EQ(before.size(), after.size());
  // One left-rotation.
  std::string expected = before.substr(1) + before[0];
  EXPECT_EQ(expected, after);
}

TEST_F(YcsbTest, MultiUpdateAppliesCounts) {
  // Keys 0 (remote from 30's container) and 30 (self), with repeat counts.
  ProcResult r = rt_->Execute(
      ycsb::KeyName(30), "multi_update",
      {Value(ycsb::KeyName(0)), Value(int64_t{3}), Value(ycsb::KeyName(30)),
       Value(int64_t{2})});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(5, r->AsInt64());
}

TEST_F(YcsbTest, MultiUpdateAtomicAcrossContainers) {
  std::string k0 = ycsb::ReadPayload(rt_.get(), 0).value();
  std::string k39 = ycsb::ReadPayload(rt_.get(), 39).value();
  ProcResult r = rt_->Execute(
      ycsb::KeyName(20), "multi_update",
      {Value(ycsb::KeyName(0)), Value(int64_t{1}), Value(ycsb::KeyName(39)),
       Value(int64_t{1}), Value(ycsb::KeyName(20)), Value(int64_t{1})});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(k0, ycsb::ReadPayload(rt_.get(), 0).value());
  EXPECT_NE(k39, ycsb::ReadPayload(rt_.get(), 39).value());
}

// --- Exchange ----------------------------------------------------------------

TEST(ExchangeTest, StrategiesAgreeOnRiskResult) {
  constexpr int kProviders = 3;
  constexpr int kOrders = 200;
  // Partitioned database (procedure- and query-parallel strategies).
  auto pdef = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildPartitionedDef(pdef.get(), kProviders);
  SimRuntime prt;
  ASSERT_TRUE(
      prt.Bootstrap(pdef.get(), DeploymentConfig::SharedNothing(kProviders + 1))
          .ok());
  ASSERT_TRUE(exchange::LoadPartitioned(&prt, kProviders, kOrders).ok());
  // Central database (classic formulation).
  auto cdef = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildCentralDef(cdef.get());
  SimRuntime crt;
  ASSERT_TRUE(crt.Bootstrap(cdef.get(), DeploymentConfig::SharedNothing(1)).ok());
  ASSERT_TRUE(exchange::LoadCentral(&crt, kProviders, kOrders).ok());

  Row args = exchange::AuthPayArgs(exchange::ProviderName(1), 7, 10.0, 100);
  ProcResult pp = prt.Execute(exchange::ExchangeName(), "auth_pay", args);
  ProcResult classic =
      crt.Execute(exchange::CentralName(), "auth_pay_classic", args);
  ASSERT_TRUE(pp.ok()) << pp.status();
  ASSERT_TRUE(classic.ok()) << classic.status();
  // Same data, same risk function: identical total risk.
  EXPECT_NEAR(classic->AsNumeric(), pp->AsNumeric(), 1e-6);

  // Query-parallel agrees too (fresh state matters: rebuild).
  auto qdef = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildPartitionedDef(qdef.get(), kProviders);
  SimRuntime qrt;
  ASSERT_TRUE(
      qrt.Bootstrap(qdef.get(), DeploymentConfig::SharedNothing(kProviders + 1))
          .ok());
  ASSERT_TRUE(exchange::LoadPartitioned(&qrt, kProviders, kOrders).ok());
  ProcResult qp = qrt.Execute(exchange::ExchangeName(), "auth_pay_qp", args);
  ASSERT_TRUE(qp.ok()) << qp.status();
  EXPECT_NEAR(classic->AsNumeric(), qp->AsNumeric(), 1e-6);
}

TEST(ExchangeTest, AuthPayInsertsOrderAtTargetProvider) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildPartitionedDef(def.get(), 3);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  ASSERT_TRUE(exchange::LoadPartitioned(&rt, 3, 50).ok());
  ASSERT_TRUE(rt.Execute(exchange::ExchangeName(), "auth_pay",
                         exchange::AuthPayArgs(exchange::ProviderName(2), 9,
                                               42.0, 10))
                  .ok());
  Status s = rt.RunDirect([&rt](SiloTxn& txn) -> Status {
    REACTDB_ASSIGN_OR_RETURN(
        Table * orders, rt.FindTable(exchange::ProviderName(2), "orders"));
    int64_t count = 0;
    REACTDB_RETURN_IF_ERROR(txn.Scan(
        orders, {}, {}, -1,
        [&count](const Row&) {
          ++count;
          return true;
        },
        rt.FindReactor(exchange::ProviderName(2))->container_id()));
    if (count != 51) return Status::Internal("expected 51 orders");
    return Status::OK();
  });
  EXPECT_TRUE(s.ok()) << s;
}

TEST(ExchangeTest, ProcedureParallelismBeatsSequentialUnderLoad) {
  // Latency comparison with a heavy sim_risk on the virtual cores.
  constexpr int64_t kNRandoms = 50000;
  auto pdef = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildPartitionedDef(pdef.get());
  SimRuntime prt;
  ASSERT_TRUE(prt.Bootstrap(pdef.get(), DeploymentConfig::SharedNothing(16))
                  .ok());
  ASSERT_TRUE(exchange::LoadPartitioned(&prt, exchange::kNumProviders, 100).ok());
  double t0 = prt.events().now();
  ASSERT_TRUE(prt.Execute(exchange::ExchangeName(), "auth_pay",
                          exchange::AuthPayArgs(exchange::ProviderName(1), 1,
                                                1.0, kNRandoms))
                  .ok());
  double pp_latency = prt.events().now() - t0;

  auto cdef = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildCentralDef(cdef.get());
  SimRuntime crt;
  ASSERT_TRUE(crt.Bootstrap(cdef.get(), DeploymentConfig::SharedNothing(1)).ok());
  ASSERT_TRUE(exchange::LoadCentral(&crt, exchange::kNumProviders, 100).ok());
  t0 = crt.events().now();
  ASSERT_TRUE(crt.Execute(exchange::CentralName(), "auth_pay_classic",
                          exchange::AuthPayArgs(exchange::ProviderName(1), 1,
                                                1.0, kNRandoms))
                  .ok());
  double seq_latency = crt.events().now() - t0;
  // 15 providers' sim_risk overlapped vs serialized: at least 5x.
  EXPECT_GT(seq_latency, 5 * pp_latency);
}

TEST(ExchangeTest, ExposureLimitAborts) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  exchange::BuildPartitionedDef(def.get(), 2);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(3)).ok());
  ASSERT_TRUE(exchange::LoadPartitioned(&rt, 2, 100).ok());
  // Shrink the per-provider exposure limit below the loaded exposure.
  Status s = rt.RunDirect([&rt](SiloTxn& txn) -> Status {
    REACTDB_ASSIGN_OR_RETURN(
        Table * risk, rt.FindTable(exchange::ExchangeName(), "settlement_risk"));
    uint32_t c = rt.FindReactor(exchange::ExchangeName())->container_id();
    return txn.Update(risk, {Value(int64_t{0})},
                      {Value(int64_t{0}), Value(1.0), Value(1e12)}, c);
  });
  ASSERT_TRUE(s.ok());
  ProcResult r = rt.Execute(
      exchange::ExchangeName(), "auth_pay",
      exchange::AuthPayArgs(exchange::ProviderName(1), 1, 1.0, 10));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUserAbort()) << r.status();
}

}  // namespace
}  // namespace reactdb

// Cost model tests: the Fig. 3 fork-join latency equation on hand-computed
// structures.
#include <gtest/gtest.h>

#include "src/costmodel/cost_model.h"

namespace reactdb {
namespace {

constexpr double kCs = 2.0;
constexpr double kCr = 5.0;

CommCosts Comm() {
  CommCosts c;
  c.cs_us = kCs;
  c.cr_us = kCr;
  return c;
}

TEST(CostModel, PureSequentialProcessing) {
  ForkJoinTxn txn;
  txn.dest = 0;
  txn.pseq_us = 12.5;
  EXPECT_DOUBLE_EQ(12.5, ForkJoinLatencyUs(txn, Comm()));
}

TEST(CostModel, SynchronousChildrenSumWithCommunication) {
  ForkJoinTxn txn;
  txn.dest = 0;
  txn.pseq_us = 10;
  for (int dest : {1, 2}) {
    ForkJoinTxn child;
    child.dest = dest;
    child.pseq_us = 7;
    txn.sync_seq.push_back(child);
  }
  // 10 + 2*(7 + Cs + Cr)
  EXPECT_DOUBLE_EQ(10 + 2 * (7 + kCs + kCr), ForkJoinLatencyUs(txn, Comm()));
}

TEST(CostModel, CoLocatedChildIsFreeToReach) {
  ForkJoinTxn txn;
  txn.dest = 3;
  ForkJoinTxn child;
  child.dest = 3;  // same executor
  child.pseq_us = 7;
  txn.sync_seq.push_back(child);
  EXPECT_DOUBLE_EQ(7, ForkJoinLatencyUs(txn, Comm()));
}

TEST(CostModel, AsyncChildrenTakeMaxWithSerializedSends) {
  ForkJoinTxn txn;
  txn.dest = 0;
  for (int dest : {1, 2, 3}) {
    ForkJoinTxn child;
    child.dest = dest;
    child.pseq_us = 10;
    txn.async_children.push_back(child);
  }
  // Child i pays prefix sends i*Cs; the last dominates:
  // 3*Cs + 10 + Cr = 6 + 10 + 5 = 21.
  EXPECT_DOUBLE_EQ(3 * kCs + 10 + kCr, ForkJoinLatencyUs(txn, Comm()));
}

TEST(CostModel, OverlappedProcessingCanDominate) {
  ForkJoinTxn txn;
  txn.dest = 0;
  txn.povp_us = 100;  // long local work overlapping the async child
  ForkJoinTxn child;
  child.dest = 1;
  child.pseq_us = 10;
  txn.async_children.push_back(child);
  // max(Cs + 10 + Cr = 17, 100) = 100
  EXPECT_DOUBLE_EQ(100, ForkJoinLatencyUs(txn, Comm()));
}

TEST(CostModel, OverlappedSyncChildrenAddToPovpBranch) {
  ForkJoinTxn txn;
  txn.dest = 0;
  txn.povp_us = 5;
  ForkJoinTxn sync_child;
  sync_child.dest = 1;
  sync_child.pseq_us = 10;
  txn.sync_ovp.push_back(sync_child);
  ForkJoinTxn async_child;
  async_child.dest = 2;
  async_child.pseq_us = 1;
  txn.async_children.push_back(async_child);
  // overlapped branch: 5 + (10 + Cs + Cr) = 22 > async branch Cs+1+Cr = 8
  EXPECT_DOUBLE_EQ(22, ForkJoinLatencyUs(txn, Comm()));
}

TEST(CostModel, RecursionThroughNestedChildren) {
  // parent -> sync child -> async grandchild
  ForkJoinTxn grandchild;
  grandchild.dest = 2;
  grandchild.pseq_us = 4;

  ForkJoinTxn child;
  child.dest = 1;
  child.pseq_us = 3;
  child.async_children.push_back(grandchild);

  ForkJoinTxn root;
  root.dest = 0;
  root.pseq_us = 1;
  root.sync_seq.push_back(child);
  // L(child) = 3 + (Cs + 4 + Cr) = 14; L(root) = 1 + 14 + Cs + Cr = 22
  EXPECT_DOUBLE_EQ(22, ForkJoinLatencyUs(root, Comm()));
}

TEST(CostModel, BreakdownComponentsSumToTotal) {
  ForkJoinTxn txn;
  txn.dest = 0;
  txn.pseq_us = 9;
  ForkJoinTxn sync_child;
  sync_child.dest = 1;
  sync_child.pseq_us = 2;
  txn.sync_seq.push_back(sync_child);
  ForkJoinTxn async_child;
  async_child.dest = 2;
  async_child.pseq_us = 6;
  txn.async_children.push_back(async_child);
  CostBreakdown b = ForkJoinBreakdown(txn, Comm());
  EXPECT_DOUBLE_EQ(9 + 2, b.sync_exec_us);
  EXPECT_DOUBLE_EQ(kCs, b.cs_us);
  EXPECT_DOUBLE_EQ(kCr, b.cr_us);
  EXPECT_DOUBLE_EQ(kCs + 6 + kCr, b.async_exec_us);
  EXPECT_DOUBLE_EQ(b.sync_exec_us + b.cs_us + b.cr_us + b.async_exec_us,
                   b.total_us);
  EXPECT_FALSE(b.ToString().empty());
}

// Qualitative property from the paper: opt-style formulations dominate
// fully-sync-style ones, and the gap grows with size.
TEST(CostModel, AsyncFormulationDominatesSyncFormulation) {
  double prev_gap = 0;
  for (int size = 1; size <= 8; ++size) {
    ForkJoinTxn sync_form;
    sync_form.dest = 0;
    ForkJoinTxn async_form;
    async_form.dest = 0;
    for (int i = 1; i <= size; ++i) {
      ForkJoinTxn child;
      child.dest = i;
      child.pseq_us = 2;
      sync_form.sync_seq.push_back(child);
      async_form.async_children.push_back(child);
      sync_form.pseq_us += 2;   // per-destination debit
      async_form.povp_us += 2;  // overlapped debits
    }
    double sync_lat = ForkJoinLatencyUs(sync_form, Comm());
    double async_lat = ForkJoinLatencyUs(async_form, Comm());
    EXPECT_LE(async_lat, sync_lat);
    double gap = sync_lat - async_lat;
    EXPECT_GE(gap, prev_gap);
    prev_gap = gap;
  }
}

}  // namespace
}  // namespace reactdb

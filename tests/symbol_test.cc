// Symbol/handle layer tests: interning determinism, string-shim
// equivalence (Execute(name, ...) == Execute(handle, ...)), error paths for
// unknown reactor/procedure/table names and handles, and the ActiveSet
// re-entry regression.
#include <gtest/gtest.h>

#include <memory>

#include "src/reactor/symbol.h"
#include "src/runtime/reactdb.h"
#include "src/util/logging.h"

namespace reactdb {
namespace {

// --- SymbolTable ---------------------------------------------------------

TEST(SymbolTableTest, InternsDenselyInFirstSeenOrder) {
  SymbolTable table;
  EXPECT_EQ(0u, table.Intern("alpha"));
  EXPECT_EQ(1u, table.Intern("beta"));
  EXPECT_EQ(0u, table.Intern("alpha"));  // idempotent
  EXPECT_EQ(2u, table.Intern("gamma"));
  EXPECT_EQ(3u, table.size());
  EXPECT_EQ("beta", table.NameOf(1));
  EXPECT_EQ(1u, table.Find("beta"));
  EXPECT_EQ(kInvalidHandle, table.Find("delta"));
}

TEST(SymbolTest, HandleValidity) {
  EXPECT_FALSE(ReactorId{}.valid());
  EXPECT_FALSE(ProcId{}.valid());
  EXPECT_FALSE(TableSlot{}.valid());
  EXPECT_TRUE(ReactorId{0}.valid());
  EXPECT_TRUE((ReactorId{3} == ReactorId{3}));
  EXPECT_TRUE((ProcId{1} != ProcId{2}));
}

// --- Fixture: a small counter database -----------------------------------

Proc GetCounter(TxnContext& ctx, Row) {
  REACTDB_CO_ASSIGN_OR_RETURN(Row row,
                              ctx.Get(TableSlot{0}, {Value(int64_t{0})}));
  co_return row[1];
}

Proc Bump(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row,
                              ctx.Get(TableSlot{0}, {Value(int64_t{0})}));
  int64_t next = row[1].AsInt64() + by;
  REACTDB_CO_RETURN_IF_ERROR(ctx.Update(TableSlot{0}, {Value(int64_t{0})},
                                        {Value(int64_t{0}), Value(next)}));
  co_return Value(next);
}

void BuildCounterDef(ReactorDatabaseDef* def, int n) {
  ReactorType& type = def->DefineType("Counter");
  type.AddSchema(SchemaBuilder("counter")
                     .AddColumn("id", ValueType::kInt64)
                     .AddColumn("value", ValueType::kInt64)
                     .SetKey({"id"})
                     .Build()
                     .value());
  type.AddProcedure("get", &GetCounter);
  type.AddProcedure("bump", &Bump);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
}

Status LoadCounters(RuntimeBase* rt, int n) {
  return rt->RunDirect([&](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      Reactor* r = rt->FindReactor("c" + std::to_string(i));
      REACTDB_RETURN_IF_ERROR(txn.Insert(r->FindTable(TableSlot{0}),
                                         {Value(int64_t{0}), Value(int64_t{0})},
                                         r->container_id()));
    }
    return Status::OK();
  });
}

// --- Interning determinism -----------------------------------------------

TEST(SymbolTest, InterningIsDeterministicAcrossIdenticalDefs) {
  ReactorDatabaseDef a;
  ReactorDatabaseDef b;
  BuildCounterDef(&a, 16);
  BuildCounterDef(&b, 16);
  for (int i = 0; i < 16; ++i) {
    std::string name = "c" + std::to_string(i);
    ReactorId ia = a.FindReactorId(name);
    ReactorId ib = b.FindReactorId(name);
    ASSERT_TRUE(ia.valid());
    EXPECT_EQ(ia, ib) << name;
    EXPECT_EQ(name, a.ReactorNameOf(ia));
  }
  const ReactorType* type = a.FindType("Counter");
  ASSERT_NE(nullptr, type);
  EXPECT_EQ(type->FindProcId("get"), b.FindType("Counter")->FindProcId("get"));
  EXPECT_EQ(type->FindProcId("bump"),
            b.FindType("Counter")->FindProcId("bump"));
  EXPECT_EQ(TableSlot{0}, type->FindTableSlot("counter"));
}

TEST(SymbolTest, DeclarationOrderGivesDenseIds) {
  ReactorDatabaseDef def;
  def.DefineType("T");
  REACTDB_CHECK_OK(def.DeclareReactor("zeta", "T"));
  REACTDB_CHECK_OK(def.DeclareReactor("alpha", "T"));
  // Ids follow declaration order, not lexicographic order.
  EXPECT_EQ(0u, def.FindReactorId("zeta").value);
  EXPECT_EQ(1u, def.FindReactorId("alpha").value);
  EXPECT_TRUE(def.DeclareReactor("zeta", "T").IsAlreadyExists());
  EXPECT_EQ(2u, def.num_reactors());
}

// --- String-shim equivalence ---------------------------------------------

TEST(SymbolTest, ExecuteByNameEqualsExecuteByHandle) {
  ReactorDatabaseDef def;
  BuildCounterDef(&def, 4);
  SimRuntime rt;
  REACTDB_CHECK_OK(rt.Bootstrap(&def, DeploymentConfig::SharedNothing(2)));
  REACTDB_CHECK_OK(LoadCounters(&rt, 4));

  ReactorId c1 = rt.ResolveReactor("c1");
  ProcId bump = rt.ResolveProc(c1, "bump");
  ProcId get = rt.ResolveProc(c1, "get");
  ASSERT_TRUE(c1.valid());
  ASSERT_TRUE(bump.valid());

  ProcResult by_name = rt.Execute("c1", "bump", {Value(int64_t{5})});
  ProcResult by_handle = rt.Execute(c1, bump, {Value(int64_t{5})});
  ASSERT_TRUE(by_name.ok());
  ASSERT_TRUE(by_handle.ok());
  EXPECT_EQ(5, by_name->AsInt64());
  EXPECT_EQ(10, by_handle->AsInt64());  // same counter, same procedure

  ProcResult read = rt.Execute(c1, get, {});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(10, read->AsInt64());

  // Resolution agrees with the runtime's registry.
  EXPECT_EQ(rt.FindReactor("c1"), rt.FindReactor(c1));
  EXPECT_EQ(rt.HomeExecutorOf("c1"), rt.HomeExecutorOf(c1));
  TableSlot slot = rt.ResolveTable(c1, "counter");
  ASSERT_TRUE(slot.valid());
  EXPECT_EQ(rt.FindTable("c1", "counter").value(),
            rt.FindTable(c1, slot).value());
}

TEST(SymbolTest, ThreadRuntimeHandleExecution) {
  ReactorDatabaseDef def;
  BuildCounterDef(&def, 2);
  ThreadRuntime rt;
  REACTDB_CHECK_OK(rt.Bootstrap(&def, DeploymentConfig::SharedNothing(2)));
  REACTDB_CHECK_OK(LoadCounters(&rt, 2));
  REACTDB_CHECK_OK(rt.Start());
  ReactorId c0 = rt.ResolveReactor("c0");
  ProcId bump = rt.ResolveProc(c0, "bump");
  ProcResult r = rt.Execute(c0, bump, {Value(int64_t{3})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(3, r->AsInt64());
  rt.Stop();
}

// --- Error paths ---------------------------------------------------------

TEST(SymbolTest, UnknownNamesAndHandles) {
  ReactorDatabaseDef def;
  BuildCounterDef(&def, 2);
  SimRuntime rt;
  REACTDB_CHECK_OK(rt.Bootstrap(&def, DeploymentConfig::SharedNothing(2)));

  // Unknown names resolve to invalid handles.
  EXPECT_FALSE(rt.ResolveReactor("ghost").valid());
  EXPECT_FALSE(rt.ResolveProc(rt.ResolveReactor("c0"), "ghost_proc").valid());
  EXPECT_FALSE(rt.ResolveProc(ReactorId{}, "bump").valid());
  EXPECT_FALSE(rt.ResolveTable(rt.ResolveReactor("c0"), "ghost_table").valid());

  // String submissions fail with NotFound, as before the handle layer.
  EXPECT_TRUE(rt.Submit("ghost", "bump", {}, nullptr).IsNotFound());
  EXPECT_TRUE(rt.Submit("c0", "ghost_proc", {}, nullptr).IsNotFound());

  // Handle submissions fail the same way for invalid/out-of-range handles.
  EXPECT_TRUE(rt.Submit(ReactorId{}, ProcId{0}, {}, nullptr).IsNotFound());
  EXPECT_TRUE(rt.Submit(ReactorId{999}, ProcId{0}, {}, nullptr).IsNotFound());
  EXPECT_TRUE(rt.Submit(rt.ResolveReactor("c0"), ProcId{999}, {}, nullptr)
                  .IsNotFound());

  // Table lookups.
  EXPECT_TRUE(rt.FindTable("ghost", "counter").status().IsNotFound());
  EXPECT_TRUE(rt.FindTable("c0", "ghost_table").status().IsNotFound());
  EXPECT_TRUE(
      rt.FindTable(rt.ResolveReactor("c0"), TableSlot{7}).status().IsNotFound());
  EXPECT_TRUE(rt.FindTable(ReactorId{}, TableSlot{0}).status().IsNotFound());
}

// --- ActiveSet -----------------------------------------------------------

TEST(ActiveSetTest, RejectsConcurrentSubtxnsOfOneRoot) {
  ActiveSet set;
  EXPECT_TRUE(set.TryEnter(1, 10));
  EXPECT_FALSE(set.TryEnter(1, 11));  // different subtxn, same root
  EXPECT_TRUE(set.TryEnter(2, 20));   // other roots unaffected
  set.Leave(1, 10);
  EXPECT_TRUE(set.TryEnter(1, 11));
  EXPECT_EQ(2u, set.size());
}

// Regression: re-entry of the *same* sub-transaction id must be rejected
// while it is active (an entry in the set means "invoked and not yet
// completed"; a second TryEnter with the same id would otherwise allow two
// live activations to share one Leave).
TEST(ActiveSetTest, ReentryOfSameSubtxnIsRejectedWhileActive) {
  ActiveSet set;
  EXPECT_TRUE(set.TryEnter(7, 3));
  EXPECT_FALSE(set.TryEnter(7, 3));  // same (root, subtxn) re-entry
  // A Leave for a non-matching subtxn id must not evict the active entry.
  set.Leave(7, 999);
  EXPECT_FALSE(set.TryEnter(7, 4));
  // The matching Leave clears it; re-entry then succeeds.
  set.Leave(7, 3);
  EXPECT_TRUE(set.TryEnter(7, 3));
  set.Leave(7, 3);
  EXPECT_EQ(0u, set.size());
}

}  // namespace
}  // namespace reactdb

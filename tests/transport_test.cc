// Transport-layer tests: mailbox FIFO/backpressure semantics, send-side
// batching (flush-on-boundary and the max-batch cap), and the runtime
// integration — cross-container CallOn demonstrably routes through the
// Mailbox/Link path with results identical to the legacy direct-call path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/runtime/reactdb.h"
#include "src/sim/event_queue.h"
#include "src/transport/transport.h"
#include "src/util/logging.h"
#include "src/workloads/smallbank/smallbank.h"

namespace reactdb {
namespace {

using transport::Envelope;
using transport::MessageKind;

Envelope VoteEnvelope(uint32_t dst, uint64_t root_id) {
  transport::CommitVote vote;
  vote.root_id = root_id;
  vote.container = dst;
  Envelope e;
  e.kind = MessageKind::kCommitVote;
  e.dst_container = dst;
  e.wire = transport::EncodeMessage(vote);
  return e;
}

uint64_t RootIdOf(const Envelope& e) {
  StatusOr<transport::Message> m = transport::DecodeMessage(e.wire);
  REACTDB_CHECK(m.ok());
  return std::get<transport::CommitVote>(*m).root_id;
}

// --- Wire round-trips --------------------------------------------------------

// Every status code a procedure can return must survive the CallResponse
// wire encoding — kOverloaded, kIOError, and kDeadlineExceeded sit past the
// originally-bounded range and regressed silently once.
TEST(WireRoundTrip, CallResponseCarriesAllStatusCodes) {
  for (StatusCode code :
       {StatusCode::kOverloaded, StatusCode::kIOError,
        StatusCode::kDeadlineExceeded, StatusCode::kAborted,
        StatusCode::kUserAbort}) {
    transport::CallResponse resp;
    resp.root_id = 7;
    resp.call_id = 9;
    resp.code = code;
    resp.status_message = "chaos";
    Envelope e;
    e.kind = MessageKind::kResponse;
    e.wire = transport::EncodeMessage(resp);
    StatusOr<transport::Message> m = transport::DecodeMessage(e.wire);
    ASSERT_TRUE(m.ok()) << StatusCodeName(code) << ": " << m.status();
    const auto& back = std::get<transport::CallResponse>(*m);
    EXPECT_EQ(code, back.code) << StatusCodeName(code);
    EXPECT_EQ("chaos", back.status_message);
    EXPECT_EQ(code, back.ToResult().status().code());
  }
}

// The deadline rides in submit and call envelopes bit-exactly: remote
// dispatch and inherited sub-transactions check the same absolute budget
// the client set.
TEST(WireRoundTrip, DeadlineSurvivesSubmitAndCallEncoding) {
  transport::SubmitRequest submit;
  submit.root_id = 3;
  submit.reactor = ReactorId{1};
  submit.proc = ProcId{2};
  submit.deadline_us = 12345.625;  // representable exactly in binary
  Envelope e;
  e.kind = MessageKind::kSubmit;
  e.wire = transport::EncodeMessage(submit);
  StatusOr<transport::Message> m = transport::DecodeMessage(e.wire);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(12345.625, std::get<transport::SubmitRequest>(*m).deadline_us);

  transport::CallRequest call;
  call.root_id = 3;
  call.call_id = 4;
  call.subtxn_id = 1;
  call.reactor = ReactorId{1};
  call.proc = ProcId{2};
  call.deadline_us = 12345.625;
  e.kind = MessageKind::kCall;
  e.wire = transport::EncodeMessage(call);
  m = transport::DecodeMessage(e.wire);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(12345.625, std::get<transport::CallRequest>(*m).deadline_us);
}

// --- Mailbox semantics -------------------------------------------------------

TEST(Mailbox, PreservesFifoOrder) {
  transport::Mailbox box(16);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.TryPush(VoteEnvelope(0, i)));
  }
  Envelope e;
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(box.TryPop(&e));
    EXPECT_EQ(i, RootIdOf(e));
  }
  EXPECT_FALSE(box.TryPop(&e));
  EXPECT_EQ(10u, box.pushed());
  EXPECT_EQ(10u, box.popped());
}

TEST(Mailbox, TryPushRejectsWhenFull) {
  transport::Mailbox box(3);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(box.TryPush(VoteEnvelope(0, i)));
  }
  EXPECT_FALSE(box.TryPush(VoteEnvelope(0, 99)));
  EXPECT_EQ(1u, box.rejected());
  // Draining frees capacity again.
  Envelope e;
  ASSERT_TRUE(box.TryPop(&e));
  EXPECT_TRUE(box.TryPush(VoteEnvelope(0, 3)));
  EXPECT_EQ(3u, box.size());
}

TEST(Mailbox, PushBlocksUntilConsumerDrains) {
  transport::Mailbox box(2);
  box.Push(VoteEnvelope(0, 0));
  box.Push(VoteEnvelope(0, 1));
  std::atomic<bool> unblocked{false};
  std::thread producer([&box, &unblocked] {
    box.Push(VoteEnvelope(0, 2));  // over capacity: must wait for a pop
    unblocked.store(true);
  });
  // The producer must be parked while the mailbox is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(unblocked.load());
  Envelope e;
  ASSERT_TRUE(box.TryPop(&e));
  EXPECT_EQ(0u, RootIdOf(e));  // backpressure does not reorder
  producer.join();
  EXPECT_TRUE(unblocked.load());
  EXPECT_EQ(2u, box.size());
}

TEST(Mailbox, ForcePushOverflowsButCounts) {
  transport::Mailbox box(1);
  box.ForcePush(VoteEnvelope(0, 0));
  box.ForcePush(VoteEnvelope(0, 1));
  EXPECT_EQ(2u, box.size());
  EXPECT_EQ(1u, box.overflowed());
}

// --- Send-side batching ------------------------------------------------------

/// Link that records batch sizes before loopback delivery.
class RecordingLink : public transport::Link {
 public:
  explicit RecordingLink(transport::Transport* t) : transport_(t) {}
  void Send(uint32_t dst, std::vector<Envelope> batch) override {
    batch_sizes.push_back(batch.size());
    transport_->DeliverBatch(dst, std::move(batch), /*blocking=*/true);
  }
  std::vector<size_t> batch_sizes;

 private:
  transport::Transport* transport_;
};

TEST(TransportBatching, FlushesOnBoundaryAndAtCap) {
  transport::Transport t(/*num_containers=*/2, /*num_lanes=*/2,
                         /*mailbox_capacity=*/64, /*max_batch=*/4);
  auto link = std::make_unique<RecordingLink>(&t);
  RecordingLink* rec = link.get();
  t.set_link(std::move(link));

  // Three messages stay buffered until the scheduling boundary...
  for (uint64_t i = 0; i < 3; ++i) t.Post(0, VoteEnvelope(1, i));
  EXPECT_TRUE(rec->batch_sizes.empty());
  t.Flush(0);
  ASSERT_EQ(1u, rec->batch_sizes.size());
  EXPECT_EQ(3u, rec->batch_sizes[0]);

  // ...six more hit the cap once (batch of 4), remainder leaves on flush.
  for (uint64_t i = 0; i < 6; ++i) t.Post(0, VoteEnvelope(1, i));
  ASSERT_EQ(2u, rec->batch_sizes.size());
  EXPECT_EQ(4u, rec->batch_sizes[1]);
  t.Flush(0);
  ASSERT_EQ(3u, rec->batch_sizes.size());
  EXPECT_EQ(2u, rec->batch_sizes[2]);

  // Flushing an empty lane sends nothing.
  t.Flush(0);
  EXPECT_EQ(3u, rec->batch_sizes.size());

  // Stats reflect the traffic; FIFO survives batching.
  EXPECT_EQ(9u, t.stats().sent_of(MessageKind::kCommitVote));
  EXPECT_EQ(4u, t.stats().max_batch.load());
  uint64_t expect = 0;
  size_t drained = t.Drain(1, [&expect](Envelope&& e) {
    if (expect < 3) {
      EXPECT_EQ(expect, RootIdOf(e));
    }
    ++expect;
  });
  EXPECT_EQ(9u, drained);
  EXPECT_EQ(9u, t.stats().delivered_of(MessageKind::kCommitVote));
}

TEST(SimLinkFifo, SmallTransferCannotOvertakeLarge) {
  EventQueue events;
  transport::Transport t(/*num_containers=*/2, /*num_lanes=*/1,
                         /*mailbox_capacity=*/64, /*max_batch=*/16);
  transport::SimLinkParams params;
  params.per_byte_us = 1.0;  // size-dependent transfer time
  t.set_link(std::make_unique<transport::SimLink>(
      &t, params, [&events] { return events.now(); },
      [&events](double when, std::function<void()> fn) {
        events.Schedule(when, std::move(fn));
      }));
  std::vector<uint64_t> delivered;
  t.set_on_inbox_ready([&t, &delivered](uint32_t c) {
    t.Drain(c, [&delivered](Envelope&& e) {
      StatusOr<transport::Message> m = transport::DecodeMessage(e.wire);
      ASSERT_TRUE(m.ok());
      delivered.push_back(std::get<transport::CallRequest>(*m).root_id);
    });
  });
  auto call = [](uint64_t root_id, size_t payload_bytes) {
    transport::CallRequest msg;
    msg.root_id = root_id;
    msg.args = {Value(std::string(payload_bytes, 'x'))};
    Envelope e;
    e.kind = MessageKind::kCall;
    e.dst_container = 1;
    e.wire = transport::EncodeMessage(msg);
    return e;
  };
  // A large transfer sent first, a small one sent right after: the small
  // one's shorter modeled delay must not let it arrive first (FIFO pipe).
  t.PostNow(call(1, 500));
  t.PostNow(call(2, 10));
  events.RunAll();
  ASSERT_EQ(2u, delivered.size());
  EXPECT_EQ(1u, delivered[0]);
  EXPECT_EQ(2u, delivered[1]);
}

// --- Runtime integration -----------------------------------------------------

Proc Bump(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row,
                              ctx.Get("counter", {Value(int64_t{0})}));
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})},
                 {Value(int64_t{0}), Value(row[1].AsInt64() + by)}));
  co_return Value(row[1].AsInt64() + by);
}

Proc GetCounter(TxnContext& ctx, Row) {
  REACTDB_CO_ASSIGN_OR_RETURN(Row row,
                              ctx.Get("counter", {Value(int64_t{0})}));
  co_return row[1];
}

// fan_out: bump every destination reactor (args) by 1, awaiting all. All
// CallOns are issued before the first await, so every request to one
// destination container leaves in one batch.
Proc FanOut(TxnContext& ctx, Row args) {
  std::vector<Future> futures;
  futures.reserve(args.size());
  for (const Value& dst : args) {
    futures.push_back(ctx.CallOn(dst.AsString(), "bump", {Value(int64_t{1})}));
  }
  int64_t sum = 0;
  for (Future& f : futures) {
    ProcResult r = co_await f;
    REACTDB_CO_RETURN_IF_ERROR(r.status());
    sum += r.value().AsInt64();
  }
  co_return Value(sum);
}

std::unique_ptr<ReactorDatabaseDef> CounterDef(int n) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Counter");
  t.AddSchema(SchemaBuilder("counter")
                  .AddColumn("k", ValueType::kInt64)
                  .AddColumn("v", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("get", &GetCounter);
  t.AddProcedure("bump", &Bump);
  t.AddProcedure("fan_out", &FanOut);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
  return def;
}

Status LoadCounters(RuntimeBase* rt, int n) {
  return rt->RunDirect([rt, n](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      std::string name = "c" + std::to_string(i);
      REACTDB_ASSIGN_OR_RETURN(Table * t, rt->FindTable(name, "counter"));
      REACTDB_RETURN_IF_ERROR(
          txn.Insert(t, {Value(int64_t{0}), Value(int64_t{0})},
                     rt->FindReactor(name)->container_id()));
    }
    return Status::OK();
  });
}

// Acceptance: cross-container CallOn in the thread runtime routes through
// the Mailbox/Link path, with exactly one CallRequest and one CallResponse
// per cross-container sub-transaction.
TEST(ThreadTransport, CrossContainerCallsRouteThroughMailbox) {
  auto def = CounterDef(2);  // c0 -> container 0, c1 -> container 1
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  ASSERT_TRUE(LoadCounters(&rt, 2).ok());
  ASSERT_TRUE(rt.Start().ok());
  ASSERT_NE(nullptr, rt.transport());

  constexpr int kTxns = 25;
  for (int i = 0; i < kTxns; ++i) {
    // Bumps c0 (direct self-call, inlined — no message) and c1 (cross
    // container — request + response through the link), committing a
    // two-container transaction.
    ProcResult r = rt.Execute("c0", "fan_out", {Value("c0"), Value("c1")});
    ASSERT_TRUE(r.ok()) << r.status();
  }
  const transport::TransportStats& stats = rt.transport()->stats();
  // Every root crossed the client boundary as a SubmitRequest...
  EXPECT_EQ(static_cast<uint64_t>(kTxns),
            stats.sent_of(MessageKind::kSubmit));
  // ...and each made exactly one cross-container call, request + response.
  EXPECT_EQ(static_cast<uint64_t>(kTxns), stats.sent_of(MessageKind::kCall));
  EXPECT_EQ(static_cast<uint64_t>(kTxns),
            stats.sent_of(MessageKind::kResponse));
  // Each committed multi-container transaction broadcast its decision to
  // the one other participant.
  EXPECT_EQ(static_cast<uint64_t>(kTxns),
            stats.sent_of(MessageKind::kCommitVote));

  // The remote bumps all landed despite every hop being message-borne.
  ProcResult v = rt.Execute("c1", "get", {});
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(kTxns, v.value().AsInt64());

  rt.Stop();
  // Every message a completed transaction depends on was delivered: the
  // roots ran (submits), the calls executed and their awaited responses
  // came back. Votes are fire-and-forget telemetry — the last one may
  // still be in flight when the executors stop.
  EXPECT_EQ(static_cast<uint64_t>(kTxns) + 1,
            stats.delivered_of(MessageKind::kSubmit));
  EXPECT_EQ(static_cast<uint64_t>(kTxns),
            stats.delivered_of(MessageKind::kCall));
  EXPECT_EQ(static_cast<uint64_t>(kTxns),
            stats.delivered_of(MessageKind::kResponse));
  EXPECT_GE(stats.delivered_of(MessageKind::kCommitVote),
            static_cast<uint64_t>(kTxns) - 1);
}

// Batching: one task fanning out to many reactors of one destination
// container ships the requests as a single link transfer.
TEST(ThreadTransport, FanOutBatchesPerDestinationContainer) {
  constexpr int kFan = 8;
  auto def = CounterDef(1 + kFan);
  ThreadRuntime rt;
  // Custom placement: c0 alone in container 0, the fan targets in 1.
  DeploymentConfig dc = DeploymentConfig::SharedNothing(2);
  dc.placement = [](const std::string& name, size_t, size_t,
                    uint32_t) -> uint32_t { return name == "c0" ? 0 : 1; };
  ASSERT_TRUE(rt.Bootstrap(def.get(), dc).ok());
  ASSERT_TRUE(LoadCounters(&rt, 1 + kFan).ok());
  ASSERT_TRUE(rt.Start().ok());

  Row dsts;
  for (int i = 1; i <= kFan; ++i) dsts.push_back(Value("c" + std::to_string(i)));
  ProcResult r = rt.Execute("c0", "fan_out", std::move(dsts));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(kFan, r.value().AsInt64());  // every counter was 0, bumped to 1

  const transport::TransportStats& stats = rt.transport()->stats();
  EXPECT_EQ(static_cast<uint64_t>(kFan), stats.sent_of(MessageKind::kCall));
  // All kFan requests were issued before the first suspension point, so
  // they left in one batch at the task boundary.
  EXPECT_GE(stats.max_batch.load(), static_cast<uint64_t>(kFan));
  rt.Stop();
}

// Time-based flush (DeploymentConfig::transport_flush_us): with the batch
// cap set far above the traffic, the *only* mechanism that can ship a
// held batch is the micro-delay timeout — the task-boundary pass skips
// batches younger than the delay, and the executor sleeps no longer than
// the earliest batch deadline. The transaction completing at all proves
// flush-on-timeout; the elapsed time proves the coalescing delay was
// actually honored rather than flushed eagerly.
TEST(ThreadTransport, TimeBasedFlushShipsHeldBatchesOnTimeout) {
  auto def = CounterDef(2);
  ThreadRuntime rt;
  DeploymentConfig dc = DeploymentConfig::SharedNothing(2);
  dc.transport_max_batch = 1024;  // the size trigger can never fire
  dc.transport_flush_us = 3000;   // 3 ms micro-delay coalescing
  ASSERT_TRUE(rt.Bootstrap(def.get(), dc).ok());
  ASSERT_TRUE(LoadCounters(&rt, 2).ok());
  ASSERT_TRUE(rt.Start().ok());

  auto t0 = std::chrono::steady_clock::now();
  ProcResult r = rt.Execute("c0", "fan_out", {Value("c1")});
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(1, r.value().AsInt64());
  // The request sat in the caller's lane for the full delay (and the
  // response in the callee's), so the round trip cannot beat one delay.
  EXPECT_GE(elapsed_ms, 3.0);

  const transport::TransportStats& stats = rt.transport()->stats();
  EXPECT_EQ(1u, stats.sent_of(MessageKind::kCall));
  EXPECT_EQ(1u, stats.delivered_of(MessageKind::kCall));
  EXPECT_EQ(1u, stats.delivered_of(MessageKind::kResponse));

  ProcResult v = rt.Execute("c1", "get", {});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(1, v.value().AsInt64());
  rt.Stop();
}

// The zero default must keep the legacy behavior: nothing is ever held
// past the task boundary (FanOutBatchesPerDestinationContainer and the
// equivalence tests above all run with the default and depend on it; this
// pins the config wiring itself).
TEST(ThreadTransport, ZeroFlushUsKeepsTaskBoundarySemantics) {
  auto def = CounterDef(2);
  ThreadRuntime rt;
  DeploymentConfig dc = DeploymentConfig::SharedNothing(2);
  dc.transport_max_batch = 1024;
  ASSERT_EQ(0.0, dc.transport_flush_us);  // the default
  ASSERT_TRUE(rt.Bootstrap(def.get(), dc).ok());
  ASSERT_TRUE(LoadCounters(&rt, 2).ok());
  ASSERT_TRUE(rt.Start().ok());
  ASSERT_FALSE(rt.transport()->aged_flush_enabled());
  ProcResult r = rt.Execute("c0", "fan_out", {Value("c1")});
  ASSERT_TRUE(r.ok()) << r.status();
  rt.Stop();
}

// Equivalence: the loopback transport path and the legacy direct-call path
// produce identical results on the banking workload, with destination
// arguments in both conventions (per-call-resolved name strings and
// submit-time pre-resolved ReactorId handles). The simulated runtime makes
// the comparison deterministic and exact.
TEST(TransportEquivalence, SmallbankMatchesDirectPathExactly) {
  constexpr int64_t kCustomers = 24;
  constexpr int kContainers = 4;
  constexpr int kTxnsPerForm = 12;

  auto run = [&](bool use_transport, bool handle_args) {
    auto def = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def.get(), kCustomers);
    SimRuntime rt;
    DeploymentConfig dc = DeploymentConfig::SharedNothing(kContainers);
    dc.use_transport = use_transport;
    REACTDB_CHECK_OK(rt.Bootstrap(def.get(), dc));
    REACTDB_CHECK_OK(smallbank::Load(&rt, kCustomers));
    smallbank::Handles handles = smallbank::ResolveHandles(&rt, kCustomers);

    std::vector<std::string> trace;
    int64_t slot = 0;
    for (smallbank::Formulation form :
         {smallbank::Formulation::kFullySync,
          smallbank::Formulation::kPartiallyAsync,
          smallbank::Formulation::kFullyAsync, smallbank::Formulation::kOpt}) {
      for (int i = 0; i < kTxnsPerForm; ++i) {
        std::vector<std::string> dst_names;
        std::vector<ReactorId> dst_ids;
        for (int j = 0; j < 5; ++j) {
          int64_t c = 1 + (slot++ % (kCustomers - 1));
          dst_names.push_back(smallbank::CustomerName(c));
          dst_ids.push_back(handles.customers[static_cast<size_t>(c)]);
        }
        double amount = 1.0 + 0.25 * static_cast<double>(i);
        smallbank::MultiTransferCall call =
            handle_args ? smallbank::MakeMultiTransfer(form, amount, dst_ids)
                        : smallbank::MakeMultiTransfer(form, amount,
                                                       dst_names);
        ProcResult r =
            rt.Execute(handles.customers[0], call.proc_id, call.args);
        trace.push_back(r.ok() ? "ok:" + r.value().ToString()
                               : r.status().ToString());
      }
    }
    // Full final state, exact.
    for (int64_t c = 0; c < kCustomers; ++c) {
      ProcResult bal = rt.Execute(handles.customers[c],
                                  smallbank::kBalanceProc, {});
      REACTDB_CHECK(bal.ok());
      trace.push_back(bal.value().ToString());
    }
    trace.push_back("committed=" + std::to_string(rt.stats().committed.load()));
    trace.push_back("aborted=" +
                    std::to_string(rt.stats().total_aborted()));
    if (use_transport) {
      // The equivalent run really did flow through the transport.
      REACTDB_CHECK(rt.transport() != nullptr);
      REACTDB_CHECK(rt.transport()->stats().sent_of(MessageKind::kCall) > 0);
      REACTDB_CHECK(rt.transport()->stats().sent_of(MessageKind::kSubmit) > 0);
    } else {
      REACTDB_CHECK(rt.transport() == nullptr);
    }
    return trace;
  };

  std::vector<std::string> baseline = run(false, false);
  const char* kNames[] = {"transport+names", "direct+handles",
                          "transport+handles"};
  int variant = 0;
  for (auto [use_transport, handle_args] :
       {std::pair{true, false}, std::pair{false, true},
        std::pair{true, true}}) {
    std::vector<std::string> trace = run(use_transport, handle_args);
    ASSERT_EQ(baseline.size(), trace.size()) << kNames[variant];
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i], trace[i])
          << kNames[variant] << " trace entry " << i;
    }
    ++variant;
  }
}

// The same equivalence on real threads: total counter mass is conserved
// and matches the committed count whether or not the transport is on.
TEST(TransportEquivalence, ThreadRuntimeConservesUpdates) {
  for (bool use_transport : {true, false}) {
    auto def = CounterDef(4);
    ThreadRuntime rt;
    DeploymentConfig dc = DeploymentConfig::SharedNothing(2);
    dc.use_transport = use_transport;
    ASSERT_TRUE(rt.Bootstrap(def.get(), dc).ok());
    ASSERT_TRUE(LoadCounters(&rt, 4).ok());
    ASSERT_TRUE(rt.Start().ok());
    std::atomic<int64_t> committed_sum{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t) {
      clients.emplace_back([&rt, t, &committed_sum] {
        for (int i = 0; i < 30; ++i) {
          std::string src = "c" + std::to_string((t + i) % 4);
          std::string dst = "c" + std::to_string((t + i + 1) % 4);
          ProcResult r = rt.Execute(src, "fan_out", {Value(dst)});
          if (r.ok()) committed_sum.fetch_add(1);
        }
      });
    }
    for (auto& c : clients) c.join();
    int64_t total = 0;
    for (int i = 0; i < 4; ++i) {
      ProcResult v = rt.Execute("c" + std::to_string(i), "get", {});
      ASSERT_TRUE(v.ok());
      total += v.value().AsInt64();
    }
    EXPECT_EQ(committed_sum.load(), total)
        << "use_transport=" << use_transport;
    rt.Stop();
  }
}

// The cost-injecting sim link produces a measurable local-vs-remote gap
// through the real serialization path, while same-container calls stay on
// the fast path and are unaffected.
TEST(SimLinkLatency, RemotePaysLinkCostsLocalDoesNot) {
  auto measure = [](double link_latency_us) {
    auto def = CounterDef(4);  // c0,c1 -> container 0; c2,c3 -> container 1
    CostParams params;
    params.link_latency_us = link_latency_us;
    SimRuntime rt(params);
    REACTDB_CHECK_OK(rt.Bootstrap(def.get(),
                                  DeploymentConfig::SharedNothing(2)));
    REACTDB_CHECK_OK(LoadCounters(&rt, 4));
    auto run_one = [&rt](const char* src, const char* dst) {
      double t0 = rt.events().now();
      ProcResult r = rt.Execute(src, "fan_out", {Value(dst)});
      REACTDB_CHECK(r.ok());
      return rt.events().now() - t0;
    };
    double local = run_one("c0", "c1");   // same container
    double remote = run_one("c0", "c2");  // crosses the link
    return std::make_pair(local, remote);
  };

  auto [local0, remote0] = measure(0);
  auto [local100, remote100] = measure(100);
  // Every transaction pays one link hop for the client-boundary submit; a
  // local (same-container) call adds nothing on top of that.
  EXPECT_NEAR(local0 + 100.0, local100, 1e-6);
  // The remote call additionally pays the link on the request and the
  // response — minus whatever executor-queueing wait the zero-cost run
  // already hid inside the round trip (the flight time absorbs it), so the
  // added cost is bounded by, and close to, two hops.
  EXPECT_GE(remote100 - remote0, 290.0);
  EXPECT_LE(remote100 - remote0, 300.0 + 1e-6);
  // Fig. 11's shape: the local-vs-remote gap widens by ~two link hops.
  double gap_growth = (remote100 - local100) - (remote0 - local0);
  EXPECT_GT(gap_growth, 180.0);
  EXPECT_LE(gap_growth, 200.0 + 1e-6);
}

}  // namespace
}  // namespace reactdb

// Reactor model tests: futures, coroutine procedures, the active-set safety
// condition (dangerous call structures abort; safe ones commit), reactor
// type/database definitions.
#include <gtest/gtest.h>

#include <memory>

#include "src/runtime/reactdb.h"
#include "src/util/logging.h"

namespace reactdb {
namespace {

// --- Future -----------------------------------------------------------

TEST(FutureTest, ReadyFutureResumesInline) {
  Future f = Future::Ready(Value(int64_t{7}));
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(7, f.state()->result()->AsInt64());
}

TEST(FutureTest, CallbackBeforeAndAfterFulfill) {
  Future f;
  int fired = 0;
  EXPECT_TRUE(f.state()->AddCallback([&fired] { ++fired; }));
  EXPECT_EQ(0, fired);
  f.state()->Fulfill(Value(int64_t{1}));
  EXPECT_EQ(1, fired);
  // After fulfillment AddCallback declines (caller proceeds inline).
  EXPECT_FALSE(f.state()->AddCallback([&fired] { ++fired; }));
  EXPECT_EQ(1, fired);
}

// --- Proc coroutines driven manually ----------------------------------------

Proc AwaitTwice(Future a, Future b) {
  ProcResult ra = co_await a;
  REACTDB_CO_RETURN_IF_ERROR(ra.status());
  ProcResult rb = co_await b;
  REACTDB_CO_RETURN_IF_ERROR(rb.status());
  co_return Value(ra->AsInt64() + rb->AsInt64());
}

TEST(ProcTest, SuspendsAndResumesOnFutures) {
  Future a, b;
  bool finished = false;
  Proc proc = AwaitTwice(a, b);
  proc.promise().on_finished = [&finished] { finished = true; };
  proc.handle().resume();  // runs to the first co_await
  EXPECT_FALSE(finished);
  a.state()->Fulfill(Value(int64_t{2}));  // no hook: resumes inline
  EXPECT_FALSE(finished);
  b.state()->Fulfill(Value(int64_t{3}));
  EXPECT_TRUE(finished);
  EXPECT_EQ(5, proc.promise().result->AsInt64());
}

TEST(ProcTest, ErrorPropagatesThroughAwait) {
  Future a, b;
  Proc proc = AwaitTwice(a, b);
  bool finished = false;
  proc.promise().on_finished = [&finished] { finished = true; };
  proc.handle().resume();
  a.state()->Fulfill(Status::UserAbort("nope"));
  EXPECT_TRUE(finished);  // returned early on error without awaiting b
  EXPECT_TRUE(proc.promise().result.status().IsUserAbort());
}

// --- ReactorType / ReactorDatabaseDef ----------------------------------------

Proc Nop(TxnContext&, Row) { co_return Value(int64_t{0}); }

TEST(ReactorDefTest, TypesAndDeclarations) {
  ReactorDatabaseDef def;
  ReactorType& t = def.DefineType("T");
  t.AddSchema(SchemaBuilder("r")
                  .AddColumn("k", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("nop", &Nop);
  EXPECT_TRUE(def.DeclareReactor("a", "T").ok());
  EXPECT_TRUE(def.DeclareReactor("b", "T").ok());
  EXPECT_TRUE(def.DeclareReactor("a", "T").IsAlreadyExists());
  EXPECT_TRUE(def.DeclareReactor("c", "Unknown").IsInvalidArgument());
  EXPECT_EQ(2u, def.num_reactors());
  ASSERT_NE(nullptr, def.FindType("T"));
  EXPECT_EQ(nullptr, def.FindType("U"));
  EXPECT_NE(nullptr, def.FindType("T")->FindProcedure("nop"));
  EXPECT_EQ(nullptr, def.FindType("T")->FindProcedure("gone"));
  EXPECT_EQ((std::vector<std::string>{"a", "b"}), def.ReactorNames());
}

TEST(ActiveSetTest, Semantics) {
  ActiveSet set;
  EXPECT_TRUE(set.TryEnter(1, 10));
  EXPECT_FALSE(set.TryEnter(1, 11));  // same root, different subtxn
  EXPECT_TRUE(set.TryEnter(2, 20));   // different root is fine
  set.Leave(1, 99);                   // wrong subtxn id: no-op
  EXPECT_FALSE(set.TryEnter(1, 11));
  set.Leave(1, 10);
  EXPECT_TRUE(set.TryEnter(1, 11));
  EXPECT_EQ(2u, set.size());
}

// --- Safety condition through the full runtime -------------------------------

// pong: leaf procedure.
Proc Pong(TxnContext&, Row) { co_return Value(int64_t{1}); }

// fan_out(r1, r2): two asynchronous sub-transactions on distinct reactors —
// safe.
Proc FanOut(TxnContext& ctx, Row args) {
  Future f1 = ctx.CallOn(args[0].AsString(), "pong", {});
  Future f2 = ctx.CallOn(args[1].AsString(), "pong", {});
  ProcResult r1 = co_await f1;
  REACTDB_CO_RETURN_IF_ERROR(r1.status());
  ProcResult r2 = co_await f2;
  REACTDB_CO_RETURN_IF_ERROR(r2.status());
  co_return Value(r1->AsInt64() + r2->AsInt64());
}

// double_call(r): two concurrent asynchronous sub-transactions on the SAME
// reactor — the dangerous structure of Section 2.2.4.
Proc DoubleCall(TxnContext& ctx, Row args) {
  Future f1 = ctx.CallOn(args[0].AsString(), "pong", {});
  Future f2 = ctx.CallOn(args[0].AsString(), "pong", {});
  ProcResult r1 = co_await f1;
  REACTDB_CO_RETURN_IF_ERROR(r1.status());
  ProcResult r2 = co_await f2;
  REACTDB_CO_RETURN_IF_ERROR(r2.status());
  co_return Value(int64_t{2});
}

// sequential_calls(r): two awaited calls to the same reactor one after the
// other — safe (never concurrently active).
Proc SequentialCalls(TxnContext& ctx, Row args) {
  Future f1 = ctx.CallOn(args[0].AsString(), "pong", {});
  ProcResult r1 = co_await f1;
  REACTDB_CO_RETURN_IF_ERROR(r1.status());
  Future f2 = ctx.CallOn(args[0].AsString(), "pong", {});
  ProcResult r2 = co_await f2;
  REACTDB_CO_RETURN_IF_ERROR(r2.status());
  co_return Value(int64_t{2});
}

// call_back(origin): completes the cycle origin -> me -> origin.
Proc CallBack(TxnContext& ctx, Row args) {
  Future f = ctx.CallOn(args[0].AsString(), "pong", {});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(int64_t{1});
}

// cycle(r): this reactor calls r, which calls back — a cyclic execution
// structure that must abort.
Proc Cycle(TxnContext& ctx, Row args) {
  Future f = ctx.CallOn(args[0].AsString(), "call_back",
                        {Value(ctx.reactor_name())});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(int64_t{1});
}

// diamond(mid1, mid2, target): two async paths that converge on the same
// reactor — must abort.
Proc Relay(TxnContext& ctx, Row args) {
  Future f = ctx.CallOn(args[0].AsString(), "pong", {});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(int64_t{1});
}

Proc Diamond(TxnContext& ctx, Row args) {
  Future f1 = ctx.CallOn(args[0].AsString(), "relay", {args[2]});
  Future f2 = ctx.CallOn(args[1].AsString(), "relay", {args[2]});
  ProcResult r1 = co_await f1;
  REACTDB_CO_RETURN_IF_ERROR(r1.status());
  ProcResult r2 = co_await f2;
  REACTDB_CO_RETURN_IF_ERROR(r2.status());
  co_return Value(int64_t{2});
}

// self_nest: direct nested self-call — inlined synchronously, safe.
Proc SelfNest(TxnContext& ctx, Row) {
  Future f = ctx.CallOn(ctx.reactor_name(), "pong", {});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(int64_t{1});
}

std::unique_ptr<ReactorDatabaseDef> MakeSafetyDef(int reactors) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Node");
  t.AddSchema(SchemaBuilder("state")
                  .AddColumn("k", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("pong", &Pong);
  t.AddProcedure("fan_out", &FanOut);
  t.AddProcedure("double_call", &DoubleCall);
  t.AddProcedure("sequential_calls", &SequentialCalls);
  t.AddProcedure("call_back", &CallBack);
  t.AddProcedure("cycle", &Cycle);
  t.AddProcedure("relay", &Relay);
  t.AddProcedure("diamond", &Diamond);
  t.AddProcedure("self_nest", &SelfNest);
  for (int i = 0; i < reactors; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("n" + std::to_string(i), "Node"));
  }
  return def;
}

class SafetyConditionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    def_ = MakeSafetyDef(6);
    rt_ = std::make_unique<SimRuntime>();
    // Shared-nothing so every reactor is remote to every other: calls are
    // genuinely asynchronous.
    ASSERT_TRUE(rt_->Bootstrap(def_.get(), DeploymentConfig::SharedNothing(6))
                    .ok());
  }

  std::unique_ptr<ReactorDatabaseDef> def_;
  std::unique_ptr<SimRuntime> rt_;
};

TEST_F(SafetyConditionTest, FanOutToDistinctReactorsCommits) {
  ProcResult r = rt_->Execute("n0", "fan_out", {Value("n1"), Value("n2")});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(2, r->AsInt64());
}

TEST_F(SafetyConditionTest, ConcurrentCallsToSameReactorAbort) {
  ProcResult r = rt_->Execute("n0", "double_call", {Value("n1")});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSafetyAbort()) << r.status();
  EXPECT_EQ(1u, rt_->stats().aborted_safety.load());
}

TEST_F(SafetyConditionTest, SequentialCallsToSameReactorCommit) {
  ProcResult r = rt_->Execute("n0", "sequential_calls", {Value("n1")});
  ASSERT_TRUE(r.ok()) << r.status();
}

TEST_F(SafetyConditionTest, CyclicStructureAborts) {
  ProcResult r = rt_->Execute("n0", "cycle", {Value("n1")});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSafetyAbort()) << r.status();
}

TEST_F(SafetyConditionTest, DiamondOnSameTargetAborts) {
  ProcResult r = rt_->Execute(
      "n0", "diamond", {Value("n1"), Value("n2"), Value("n3")});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsSafetyAbort()) << r.status();
}

TEST_F(SafetyConditionTest, DiamondOnDistinctTargetsCommits) {
  // Same structure but the two relays hit different reactors.
  ProcResult ok = rt_->Execute(
      "n0", "diamond", {Value("n1"), Value("n2"), Value("n3")});
  (void)ok;  // n3 twice -> abort, counted above
  auto def = MakeSafetyDef(6);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(6)).ok());
  // Patch: call relays that target n3 and n4 respectively by using two
  // diamond-like calls sequentially.
  ProcResult r1 = rt.Execute("n0", "relay", {Value("n3")});
  ProcResult r2 = rt.Execute("n0", "relay", {Value("n4")});
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
}

TEST_F(SafetyConditionTest, DirectSelfCallIsInlined) {
  ProcResult r = rt_->Execute("n0", "self_nest", {});
  ASSERT_TRUE(r.ok()) << r.status();
}

TEST_F(SafetyConditionTest, SafetyAlsoEnforcedOnThreadRuntime) {
  auto def = MakeSafetyDef(4);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  ASSERT_TRUE(rt.Start().ok());
  ProcResult bad = rt.Execute("n0", "double_call", {Value("n1")});
  EXPECT_TRUE(bad.status().IsSafetyAbort()) << bad.status();
  ProcResult good = rt.Execute("n0", "fan_out", {Value("n1"), Value("n2")});
  EXPECT_TRUE(good.ok()) << good.status();
  rt.Stop();
}

TEST_F(SafetyConditionTest, UnknownReactorOrProcedureAborts) {
  ProcResult r = rt_->Execute("n0", "fan_out", {Value("ghost"), Value("n1")});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(rt_->Submit("ghost", "pong", {}, nullptr).IsNotFound());
  EXPECT_TRUE(rt_->Submit("n0", "ghost_proc", {}, nullptr).IsNotFound());
}

}  // namespace
}  // namespace reactdb

// Query layer tests: expression evaluation and the Select/Update builders.
#include <gtest/gtest.h>

#include "src/query/query.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace reactdb {
namespace {

Schema OrdersSchema() {
  return SchemaBuilder("orders")
      .AddColumn("id", ValueType::kInt64)
      .AddColumn("provider", ValueType::kString)
      .AddColumn("value", ValueType::kDouble)
      .AddColumn("settled", ValueType::kString)
      .SetKey({"id"})
      .AddIndex("by_provider", {"provider"})
      .Build()
      .value();
}

// --- Expr ------------------------------------------------------------

TEST(Expr, LiteralAndColumn) {
  Schema s = OrdersSchema();
  Row row = {Value(int64_t{1}), Value("visa"), Value(10.5), Value("N")};
  EXPECT_EQ(Value(int64_t{5}), Lit(int64_t{5}).Eval(row, s).value());
  EXPECT_EQ(Value("visa"), Col("provider").Eval(row, s).value());
  EXPECT_FALSE(Col("nope").Eval(row, s).ok());
}

TEST(Expr, ComparisonsAndBoolean) {
  Schema s = OrdersSchema();
  Row row = {Value(int64_t{1}), Value("visa"), Value(10.5), Value("N")};
  EXPECT_TRUE((Col("value") > Lit(10.0)).Test(row, s));
  EXPECT_FALSE((Col("value") > Lit(11.0)).Test(row, s));
  EXPECT_TRUE((Col("settled") == Lit("N") && Col("value") >= Lit(10.5))
                  .Test(row, s));
  EXPECT_TRUE((Col("settled") == Lit("Y") || Col("provider") == Lit("visa"))
                  .Test(row, s));
  EXPECT_TRUE((!(Col("settled") == Lit("Y"))).Test(row, s));
  EXPECT_TRUE((Col("id") != Lit(int64_t{2})).Test(row, s));
  EXPECT_TRUE((Col("value") <= Lit(10.5)).Test(row, s));
  EXPECT_TRUE((Col("id") < Lit(int64_t{2})).Test(row, s));
}

TEST(Expr, Arithmetic) {
  Schema s = OrdersSchema();
  Row row = {Value(int64_t{4}), Value("m"), Value(2.5), Value("N")};
  EXPECT_DOUBLE_EQ(6.5, (Col("id") + Col("value")).Eval(row, s)->AsNumeric());
  EXPECT_DOUBLE_EQ(1.5, (Col("id") - Lit(2.5)).Eval(row, s)->AsNumeric());
  EXPECT_EQ(8, (Col("id") * Lit(int64_t{2})).Eval(row, s)->AsInt64());
  EXPECT_EQ(2, (Col("id") / Lit(int64_t{2})).Eval(row, s)->AsInt64());
  EXPECT_FALSE((Col("id") / Lit(int64_t{0})).Eval(row, s).ok());
  EXPECT_EQ("mN", (Col("provider") + Col("settled")).Eval(row, s)->AsString());
}

TEST(Expr, NullPropagation) {
  Schema s = OrdersSchema();
  Row row = {Value(int64_t{1}), Value::Null(), Value::Null(), Value("N")};
  EXPECT_TRUE((Col("provider") == Lit("x")).Eval(row, s)->is_null());
  EXPECT_FALSE((Col("provider") == Lit("x")).Test(row, s));  // null -> false
  EXPECT_TRUE((Col("value") + Lit(1.0)).Eval(row, s)->is_null());
  // Short-circuit keeps decided results non-null.
  EXPECT_TRUE((Lit(true) || Col("provider") == Lit("x")).Test(row, s));
  EXPECT_FALSE((Lit(false) && Col("provider") == Lit("x")).Test(row, s));
}

TEST(Expr, ToStringReadable) {
  Expr e = Col("value") > Lit(10.0) && Col("settled") == Lit("N");
  EXPECT_EQ("((value > 10) AND (settled = N))", e.ToString());
}

// --- Select / Update ---------------------------------------------------------

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : table_(OrdersSchema()) {
    SiloTxn loader(&epochs_);
    Rng rng(5);
    const char* providers[] = {"amex", "mc", "visa"};
    for (int64_t i = 1; i <= 60; ++i) {
      REACTDB_CHECK_OK(loader.Insert(
          &table_,
          {Value(i), Value(providers[i % 3]), Value(static_cast<double>(i)),
           Value(i % 2 == 0 ? "Y" : "N")},
          0));
    }
    REACTDB_CHECK_OK(loader.Commit(&tids_).status());
  }

  EpochManager epochs_;
  TidSource tids_;
  Table table_;
};

TEST_F(QueryTest, FullScanWithPredicate) {
  SiloTxn txn(&epochs_);
  Select sel(&table_);
  sel.Where(Col("settled") == Lit("N") && Col("value") > Lit(50.0));
  auto rows = sel.Rows(&txn, 0);
  ASSERT_TRUE(rows.ok());
  // odd ids 51..59 -> 51,53,55,57,59
  EXPECT_EQ(5u, rows->size());
  txn.Abort();
}

TEST_F(QueryTest, KeyLookupAndRange) {
  SiloTxn txn(&epochs_);
  Select by_key(&table_);
  by_key.Key({Value(int64_t{7})});
  StatusOr<Row> one = by_key.One(&txn, 0);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(7, (*one)[0].AsInt64());

  Select range(&table_);
  range.KeyRange({Value(int64_t{10})}, {Value(int64_t{15})});
  EXPECT_EQ(5, range.Count(&txn, 0).value());
  txn.Abort();
}

TEST_F(QueryTest, LimitAndReverse) {
  SiloTxn txn(&epochs_);
  Select sel(&table_);
  sel.Where(Col("settled") == Lit("N")).Reverse().Limit(3);
  auto rows = sel.Rows(&txn, 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(3u, rows->size());
  EXPECT_EQ(59, (*rows)[0][0].AsInt64());
  EXPECT_EQ(57, (*rows)[1][0].AsInt64());
  EXPECT_EQ(55, (*rows)[2][0].AsInt64());
  txn.Abort();
}

TEST_F(QueryTest, Aggregates) {
  SiloTxn txn(&epochs_);
  Select all(&table_);
  EXPECT_EQ(60, all.Count(&txn, 0).value());
  EXPECT_DOUBLE_EQ(60 * 61 / 2.0, Select(&table_).Sum(&txn, 0, "value").value());
  EXPECT_EQ(Value(1.0), Select(&table_).Min(&txn, 0, "value").value());
  EXPECT_EQ(Value(60.0), Select(&table_).Max(&txn, 0, "value").value());
  Select none(&table_);
  none.Where(Col("value") > Lit(1e9));
  EXPECT_DOUBLE_EQ(0.0, none.Sum(&txn, 0, "value").value());
  EXPECT_TRUE(none.Min(&txn, 0, "value")->is_null());
  EXPECT_FALSE(Select(&table_).Sum(&txn, 0, "nope").ok());
  txn.Abort();
}

TEST_F(QueryTest, SecondaryIndexAccessPath) {
  SiloTxn txn(&epochs_);
  Select sel(&table_);
  sel.Index("by_provider", {Value("visa")});
  auto rows = sel.Rows(&txn, 0);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(20u, rows->size());
  for (const Row& row : *rows) EXPECT_EQ("visa", row[1].AsString());
  Select bad(&table_);
  bad.Index("no_such_index", {Value("x")});
  EXPECT_FALSE(bad.Rows(&txn, 0).ok());
  txn.Abort();
}

TEST_F(QueryTest, OneOnEmptyIsNotFound) {
  SiloTxn txn(&epochs_);
  Select sel(&table_);
  sel.Where(Col("value") > Lit(1e9));
  EXPECT_TRUE(sel.One(&txn, 0).status().IsNotFound());
  Select missing_key(&table_);
  missing_key.Key({Value(int64_t{999})});
  EXPECT_TRUE(missing_key.One(&txn, 0).status().IsNotFound());
  txn.Abort();
}

TEST_F(QueryTest, SearchedUpdate) {
  {
    SiloTxn txn(&epochs_);
    Update upd(&table_);
    upd.Where(Col("settled") == Lit("N"))
        .Set("value", Col("value") * Lit(2.0))
        .Set("settled", Lit("Y"));
    StatusOr<int64_t> n = upd.Execute(&txn, 0);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(30, *n);
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  SiloTxn check(&epochs_);
  Select unsettled(&table_);
  unsettled.Where(Col("settled") == Lit("N"));
  EXPECT_EQ(0, unsettled.Count(&check, 0).value());
  // Odd rows were doubled.
  StatusOr<Row> row = check.Get(&table_, {Value(int64_t{5})}, 0);
  EXPECT_DOUBLE_EQ(10.0, (*row)[2].AsNumeric());
  check.Abort();
}

TEST_F(QueryTest, UpdateByKey) {
  SiloTxn txn(&epochs_);
  Update upd(&table_);
  upd.Key({Value(int64_t{3})}).Set("value", Lit(999.0));
  EXPECT_EQ(1, upd.Execute(&txn, 0).value());
  ASSERT_TRUE(txn.Commit(&tids_).ok());
  SiloTxn check(&epochs_);
  EXPECT_DOUBLE_EQ(999.0,
                   (*check.Get(&table_, {Value(int64_t{3})}, 0))[2].AsNumeric());
  check.Abort();
}

TEST_F(QueryTest, WhereComposesConjunctively) {
  SiloTxn txn(&epochs_);
  Select sel(&table_);
  sel.Where(Col("settled") == Lit("N")).Where(Col("value") < Lit(10.0));
  // odd ids below 10: 1,3,5,7,9
  EXPECT_EQ(5, sel.Count(&txn, 0).value());
  txn.Abort();
}

}  // namespace
}  // namespace reactdb

// Arena / KeyBuf / flat-container unit tests: alignment, reset-reuse,
// oversize spill, and the open-addressed structures backing the Silo sets.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/arena.h"
#include "src/util/flat.h"
#include "src/util/keycodec.h"

namespace reactdb {
namespace {

TEST(Arena, AlignmentHonored) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.Allocate(3, align);  // odd size forces misaligned bump
      EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % align)
          << "align=" << align;
    }
  }
  // Mixed types through the typed helpers.
  double* d = arena.AllocateArrayUninitialized<double>(3);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(d) % alignof(double));
  char* c = static_cast<char*>(arena.Allocate(1, 1));
  uint64_t* u = arena.AllocateArrayUninitialized<uint64_t>(1);
  (void)c;
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(u) % alignof(uint64_t));
}

TEST(Arena, ResetReusesBlocks) {
  Arena arena(1024);
  void* first = arena.Allocate(100, 8);
  arena.Allocate(100, 8);
  size_t blocks = arena.num_blocks();
  size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(0u, arena.bytes_used());
  // Same storage comes back, no new blocks appear.
  void* again = arena.Allocate(100, 8);
  EXPECT_EQ(first, again);
  EXPECT_EQ(blocks, arena.num_blocks());
  EXPECT_EQ(reserved, arena.bytes_reserved());
}

TEST(Arena, ResetWalksRetainedBlocksBeforeGrowing) {
  Arena arena(256);
  // Force several blocks.
  for (int i = 0; i < 8; ++i) arena.Allocate(200, 8);
  size_t blocks = arena.num_blocks();
  ASSERT_GT(blocks, 1u);
  arena.Reset();
  // The same footprint must fit in the retained blocks.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) arena.Allocate(200, 8);
    EXPECT_EQ(blocks, arena.num_blocks()) << "round " << round;
    arena.Reset();
  }
}

TEST(Arena, OversizeSpillGetsDedicatedBlock) {
  Arena arena(512);
  char* big = static_cast<char*>(arena.Allocate(10000, 8));
  std::memset(big, 0xAB, 10000);  // must be fully usable
  EXPECT_GE(arena.bytes_reserved(), 10000u);
  // Small allocations still work after a spill.
  void* small = arena.Allocate(16, 8);
  EXPECT_NE(nullptr, small);
}

TEST(ArenaPool, AcquireReleaseRoundTrip) {
  ArenaPool pool;
  Arena* a = pool.Acquire();
  a->Allocate(64, 8);
  EXPECT_GT(a->bytes_used(), 0u);
  pool.Release(a);
  // Released arena comes back reset.
  Arena* b = pool.Acquire();
  EXPECT_EQ(a, b);
  EXPECT_EQ(0u, b->bytes_used());
  Arena* c = pool.Acquire();  // pool empty -> new arena
  EXPECT_NE(b, c);
  EXPECT_EQ(2u, pool.num_arenas());
}

TEST(KeyBuf, InlineThenSpill) {
  KeyBuf buf;
  EXPECT_FALSE(buf.spilled());
  std::string expect;
  for (size_t i = 0; i < KeyBuf::kInlineBytes; ++i) {
    buf.push_back(static_cast<char>('a' + (i % 26)));
    expect.push_back(static_cast<char>('a' + (i % 26)));
  }
  EXPECT_FALSE(buf.spilled());
  for (int i = 0; i < 100; ++i) {
    buf.push_back('z');
    expect.push_back('z');
  }
  EXPECT_TRUE(buf.spilled());
  EXPECT_EQ(expect, buf.ToString());
}

TEST(KeyBuf, DoubleHeapSpillPreservesContents) {
  // Regression: the second heap spill must copy out of the first spill
  // buffer before freeing it.
  KeyBuf buf;
  std::string expect;
  for (int round = 0; round < 6; ++round) {
    std::string chunk(KeyBuf::kInlineBytes, static_cast<char>('a' + round));
    buf.append(chunk.data(), chunk.size());
    expect += chunk;
  }
  EXPECT_TRUE(buf.spilled());
  EXPECT_EQ(expect, buf.ToString());
}

TEST(KeyBuf, ArenaSpillUsesArena) {
  Arena arena;
  KeyBuf buf(&arena);
  std::string big(KeyBuf::kInlineBytes * 3, 'x');
  buf.append(big.data(), big.size());
  EXPECT_TRUE(buf.spilled());
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_EQ(big, buf.ToString());
}

TEST(KeyBuf, EncodeMatchesStringCodec) {
  Row keys[] = {
      {Value(int64_t{42})},
      {Value(int64_t{-7}), Value(3.25)},
      {Value("warehouse_17"), Value(int64_t{3})},
      {Value(std::string("a\0b", 3))},
      {Value(true), Value::Null()},
  };
  for (const Row& key : keys) {
    KeyBuf buf;
    EncodeKeyTo(key, &buf);
    EXPECT_EQ(EncodeKey(key), buf.ToString());
  }
}

TEST(KeyBuf, PrefixSuccessorInPlaceMatchesString) {
  for (std::string s : {std::string("abc"), std::string("ab\xff"),
                        std::string("\xff\xff"), std::string()}) {
    KeyBuf buf;
    buf.append(s.data(), s.size());
    PrefixSuccessorInPlace(&buf);
    EXPECT_EQ(PrefixSuccessor(s), buf.ToString()) << "input " << s;
  }
}

TEST(FlatVec, GrowthPreservesContents) {
  Arena arena;
  FlatVec<uint64_t> v;
  for (uint64_t i = 0; i < 1000; ++i) v.push_back(&arena, i * 3);
  ASSERT_EQ(1000u, v.size());
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(i * 3, v[i]);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(PtrIndex, EmplaceFindDedup) {
  Arena arena;
  PtrIndex index;
  std::vector<int> objects(500);
  for (int i = 0; i < 500; ++i) {
    auto [val, inserted] =
        index.Emplace(&arena, &objects[i], static_cast<uint32_t>(i));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(static_cast<uint32_t>(i), val);
  }
  // Duplicates return the first value.
  for (int i = 0; i < 500; ++i) {
    auto [val, inserted] = index.Emplace(&arena, &objects[i], 9999);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(static_cast<uint32_t>(i), val);
    EXPECT_EQ(static_cast<uint32_t>(i), index.Find(&objects[i]));
  }
  int outside;
  EXPECT_EQ(PtrIndex::kNpos, index.Find(&outside));
  index.clear();
  EXPECT_EQ(PtrIndex::kNpos, index.Find(&objects[0]));
  EXPECT_EQ(0u, index.size());
}

TEST(ContainerSet, SortedDedupedIteration) {
  Arena arena;
  ContainerSet set;
  for (uint32_t c : {5u, 1u, 3u, 5u, 1u, 0u, 7u}) set.insert(&arena, c);
  std::vector<uint32_t> seen(set.begin(), set.end());
  EXPECT_EQ((std::vector<uint32_t>{0, 1, 3, 5, 7}), seen);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(2));
  EXPECT_EQ(5u, set.size());
}

}  // namespace
}  // namespace reactdb

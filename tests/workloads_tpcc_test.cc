// TPC-C integration tests: per-transaction behavior, consistency conditions
// after a mixed run, cross-reactor new-orders, and both runtimes.
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/sim_driver.h"
#include "src/runtime/reactdb.h"
#include "src/workloads/tpcc/tpcc.h"

namespace reactdb {
namespace {

using tpcc::WarehouseName;

class TpccSimTest : public ::testing::Test {
 protected:
  static constexpr int64_t kWarehouses = 2;

  void SetUp() override {
    def_ = std::make_unique<ReactorDatabaseDef>();
    tpcc::BuildDef(def_.get(), kWarehouses);
    rt_ = std::make_unique<SimRuntime>();
    ASSERT_TRUE(rt_->Bootstrap(def_.get(),
                               DeploymentConfig::SharedNothing(kWarehouses))
                    .ok());
    ASSERT_TRUE(tpcc::Load(rt_.get(), kWarehouses).ok());
  }

  std::unique_ptr<ReactorDatabaseDef> def_;
  std::unique_ptr<SimRuntime> rt_;
};

TEST_F(TpccSimTest, LoadPassesConsistency) {
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok());
}

TEST_F(TpccSimTest, LocalNewOrderCommits) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = kWarehouses;
  options.remote_item_prob = 0;
  tpcc::Generator gen(options, 11);
  for (int i = 0; i < 10; ++i) {
    tpcc::TxnRequest req = gen.MakeNewOrder(1);
    // Strip the 1% invalid-item flag for determinism here.
    for (size_t a = 6; a + 2 < req.args.size(); a += 3) {
      if (req.args[a].AsInt64() < 0) req.args[a] = Value(int64_t{1});
    }
    ProcResult r = rt_->Execute(req.reactor, req.proc, req.args);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_GT(r->AsNumeric(), 0.0);  // total order amount
  }
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok());
}

TEST_F(TpccSimTest, RemoteNewOrderTouchesBothContainers) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = kWarehouses;
  options.remote_item_prob = 1.0;  // every item remote
  tpcc::Generator gen(options, 12);
  tpcc::TxnRequest req = gen.MakeNewOrder(1);
  for (size_t a = 6; a + 2 < req.args.size(); a += 3) {
    if (req.args[a].AsInt64() < 0) req.args[a] = Value(int64_t{1});
  }
  ProcResult r = rt_->Execute(req.reactor, req.proc, req.args);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(1u, rt_->stats().committed.load());
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok());
}

TEST_F(TpccSimTest, InvalidItemRollsBack) {
  uint64_t committed_before = rt_->stats().committed.load();
  Row args = {Value(int64_t{1}), Value(int64_t{1}), Value(0.0), Value(0.0),
              Value(false), Value(int64_t{1}),
              // one invalid item
              Value(int64_t{-1}), Value(std::string()), Value(int64_t{5})};
  ProcResult r = rt_->Execute(WarehouseName(1), "new_order", args);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUserAbort());
  EXPECT_EQ(committed_before, rt_->stats().committed.load());
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok());
}

TEST_F(TpccSimTest, PaymentLocalAndRemote) {
  // Local by id.
  ProcResult r = rt_->Execute(
      WarehouseName(1), "payment",
      {Value(int64_t{1}), Value(100.0), Value(false), Value(int64_t{7}),
       Value(std::string()), Value(int64_t{1})});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(7, r->AsInt64());
  // Remote by last name.
  r = rt_->Execute(WarehouseName(1), "payment",
                   {Value(int64_t{2}), Value(50.0), Value(true),
                    Value(tpcc::LastName(3)), Value(WarehouseName(2)),
                    Value(int64_t{4})});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok());
}

TEST_F(TpccSimTest, OrderStatusDeliveryStockLevel) {
  ProcResult status = rt_->Execute(
      WarehouseName(1), "order_status",
      {Value(int64_t{1}), Value(false), Value(int64_t{10})});
  ASSERT_TRUE(status.ok()) << status.status();

  ProcResult delivery =
      rt_->Execute(WarehouseName(1), "delivery", {Value(int64_t{3})});
  ASSERT_TRUE(delivery.ok()) << delivery.status();
  EXPECT_EQ(tpcc::kNumDistricts, delivery->AsInt64());

  ProcResult level = rt_->Execute(
      WarehouseName(1), "stock_level", {Value(int64_t{1}), Value(int64_t{15})});
  ASSERT_TRUE(level.ok()) << level.status();
  EXPECT_GE(level->AsInt64(), 0);
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok());
}

TEST_F(TpccSimTest, MixedClosedLoopKeepsConsistency) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = kWarehouses;
  auto gen = std::make_shared<tpcc::Generator>(options, 21);
  harness::DriverOptions driver_options;
  driver_options.num_workers = 2;
  driver_options.num_epochs = 5;
  driver_options.epoch_us = 20000;
  driver_options.warmup_us = 5000;
  auto request_gen = [gen, this](int worker) {
    tpcc::TxnRequest req = gen->Next(worker % kWarehouses + 1);
    return harness::Request{req.reactor, req.proc, std::move(req.args)};
  };
  harness::DriverResult result =
      harness::RunClosedLoop(rt_.get(), driver_options, request_gen);
  EXPECT_GT(result.committed, 50u);
  EXPECT_TRUE(tpcc::CheckConsistency(rt_.get(), kWarehouses).ok())
      << result.Summary();
}

TEST(TpccThreadRuntime, MixedRunKeepsConsistency) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  tpcc::BuildDef(def.get(), 2);
  ThreadRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(),
                           DeploymentConfig::SharedEverythingWithAffinity(2))
                  .ok());
  ASSERT_TRUE(tpcc::Load(&rt, 2).ok());
  ASSERT_TRUE(rt.Start().ok());
  tpcc::GeneratorOptions options;
  options.num_warehouses = 2;
  tpcc::Generator gen(options, 5);
  int committed = 0;
  for (int i = 0; i < 60; ++i) {
    tpcc::TxnRequest req = gen.Next(i % 2 + 1);
    ProcResult r = rt.Execute(req.reactor, req.proc, req.args);
    if (r.ok()) {
      ++committed;
    } else {
      EXPECT_TRUE(r.status().IsAbort()) << r.status();
    }
  }
  EXPECT_GT(committed, 40);
  EXPECT_TRUE(tpcc::CheckConsistency(&rt, 2).ok());
  rt.Stop();
}

}  // namespace
}  // namespace reactdb

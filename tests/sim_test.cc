// Simulator tests: event queue semantics and virtual-time behavior of the
// simulated runtime (latency composition, queueing, utilization, Cs/Cr
// accounting, determinism).
#include <gtest/gtest.h>

#include <memory>

#include "src/runtime/reactdb.h"
#include "src/sim/event_queue.h"
#include "src/util/logging.h"

namespace reactdb {
namespace {

// --- EventQueue ---------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&order] { order.push_back(3); });
  q.Schedule(10, [&order] { order.push_back(1); });
  q.Schedule(20, [&order] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
  EXPECT_DOUBLE_EQ(30, q.now());
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(7, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ((std::vector<int>{0, 1, 2, 3, 4}), order);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) q.ScheduleAfter(10, chain);
  };
  q.Schedule(0, chain);
  q.RunAll();
  EXPECT_EQ(5, fired);
  EXPECT_DOUBLE_EQ(40, q.now());
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue q;
  q.Schedule(100, [] {});
  q.RunAll();
  double fired_at = -1;
  q.Schedule(5, [&q, &fired_at] { fired_at = q.now(); });  // in the past
  q.RunAll();
  EXPECT_DOUBLE_EQ(100, fired_at);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(10, [&fired] { ++fired; });
  q.Schedule(50, [&fired] { ++fired; });
  q.RunUntil(30);
  EXPECT_EQ(1, fired);
  EXPECT_DOUBLE_EQ(30, q.now());
  q.RunAll();
  EXPECT_EQ(2, fired);
}

// --- SimRuntime timing ---------------------------------------------------

Proc ComputeProc(TxnContext& ctx, Row args) {
  ctx.Compute(args[0].AsNumeric());
  co_return Value(int64_t{0});
}

Proc CallRemote(TxnContext& ctx, Row args) {
  Future f = ctx.CallOn(args[0].AsString(), "compute", {args[1]});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(int64_t{0});
}

std::unique_ptr<ReactorDatabaseDef> TimingDef() {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("T");
  t.AddSchema(SchemaBuilder("s")
                  .AddColumn("k", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("compute", &ComputeProc);
  t.AddProcedure("call_remote", &CallRemote);
  REACTDB_CHECK_OK(def->DeclareReactor("a", "T"));
  REACTDB_CHECK_OK(def->DeclareReactor("b", "T"));
  return def;
}

// Completion time of one transaction, measured the way the harness does:
// NowUs() inside the completion callback (segment-aware, includes commit).
double RunAndTime(SimRuntime* rt, const std::string& reactor,
                  const std::string& proc, Row args) {
  double done_at = -1;
  REACTDB_CHECK_OK(rt->Submit(reactor, proc, std::move(args),
                              [rt, &done_at](ProcResult r, const RootTxn&) {
                                REACTDB_CHECK(r.ok());
                                done_at = rt->NowUs();
                              }));
  rt->RunAll();
  return done_at;
}

TEST(SimTiming, LocalComputeAdvancesVirtualTimeExactly) {
  auto def = TimingDef();
  CostParams p;
  SimRuntime rt(p);
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  double t0 = rt.events().now();
  double done = RunAndTime(&rt, "a", "compute", {Value(100.0)});
  // compute(100) + commit_base (empty write set, single container).
  EXPECT_NEAR(100.0 + p.commit_base_us, done - t0, 1e-9);
}

TEST(SimTiming, RemoteCallAddsCsAndCrAnd2PC) {
  auto def = TimingDef();
  CostParams p;
  SimRuntime rt(p);
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  double t0 = rt.events().now();
  double done = RunAndTime(&rt, "a", "call_remote", {Value("b"), Value(50.0)});
  // The root touches no data itself, so the commit covers one container:
  // Cs + compute + Cr + commit_base.
  EXPECT_NEAR(p.cs_us + 50.0 + p.cr_us + p.commit_base_us, done - t0, 1e-9);
}

TEST(SimTiming, SameContainerCallHasNoCommunicationCost) {
  auto def = TimingDef();
  CostParams p;
  SimRuntime rt(p);
  // Both reactors in one container: the call is inlined.
  ASSERT_TRUE(rt.Bootstrap(def.get(),
                           DeploymentConfig::SharedEverythingWithAffinity(1))
                  .ok());
  double t0 = rt.events().now();
  double done = RunAndTime(&rt, "a", "call_remote", {Value("b"), Value(50.0)});
  EXPECT_NEAR(50.0 + p.commit_base_us, done - t0, 1e-9);
}

TEST(SimTiming, QueueingDelaysEmergeUnderLoad) {
  auto def = TimingDef();
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  // Two 1000us computations on the same executor must serialize.
  int done = 0;
  double finish_last = 0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(rt.Submit("a", "compute", {Value(1000.0)},
                          [&](ProcResult r, const RootTxn&) {
                            EXPECT_TRUE(r.ok());
                            ++done;
                            finish_last = rt.events().now();
                          })
                    .ok());
  }
  rt.RunAll();
  EXPECT_EQ(2, done);
  EXPECT_GE(finish_last, 2000.0);  // serialized, not parallel
}

TEST(SimTiming, ParallelExecutorsOverlap) {
  auto def = TimingDef();
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  int done = 0;
  ASSERT_TRUE(rt.Submit("a", "compute", {Value(1000.0)},
                        [&](ProcResult, const RootTxn&) { ++done; })
                  .ok());
  ASSERT_TRUE(rt.Submit("b", "compute", {Value(1000.0)},
                        [&](ProcResult, const RootTxn&) { ++done; })
                  .ok());
  rt.RunAll();
  EXPECT_EQ(2, done);
  // Overlapped on two virtual cores: well under the serialized 2000us.
  EXPECT_LT(rt.events().now(), 1500.0);
  EXPECT_GT(rt.BusyTotalUs(0), 999.0);
  EXPECT_GT(rt.BusyTotalUs(1), 999.0);
}

TEST(SimTiming, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto def = TimingDef();
    SimRuntime rt;
    REACTDB_CHECK_OK(
        rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)));
    for (int i = 0; i < 10; ++i) {
      (void)rt.Execute("a", "call_remote", {Value("b"), Value(10.0 + i)});
    }
    return rt.events().now();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimTiming, ProfileAttributesComponents) {
  auto def = TimingDef();
  CostParams p;
  SimRuntime rt(p);
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  RootTxn::Profile profile;
  ASSERT_TRUE(rt.Submit("a", "call_remote", {Value("b"), Value(40.0)},
                        [&profile](ProcResult r, const RootTxn& root) {
                          EXPECT_TRUE(r.ok());
                          profile = root.profile;
                        })
                  .ok());
  rt.RunAll();
  EXPECT_NEAR(p.cs_us, profile.cs_us, 1e-9);
  EXPECT_NEAR(p.cr_us, profile.cr_us, 1e-9);
  // The remote compute is the only outstanding child: critical-path sync.
  EXPECT_NEAR(40.0, profile.sync_exec_us, 1e-9);
  EXPECT_NEAR(p.commit_base_us, profile.commit_us, 1e-9);
}

TEST(CostParamsTest, FromConfigOverrides) {
  Config config = Config::Parse(
                      "[costs]\n"
                      "cs_us = 9.5\n"
                      "cr_us = 11.5\n"
                      "non_affine_penalty = 0.25\n")
                      .value();
  CostParams p = CostParams::FromConfig(config);
  EXPECT_DOUBLE_EQ(9.5, p.cs_us);
  EXPECT_DOUBLE_EQ(11.5, p.cr_us);
  EXPECT_DOUBLE_EQ(0.25, p.non_affine_penalty);
  EXPECT_DOUBLE_EQ(CostParams().point_read_us, p.point_read_us);  // default
}

}  // namespace
}  // namespace reactdb

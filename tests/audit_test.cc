// Isolation-audit subsystem tests (PR 9, src/audit/):
//  * Checker unit tests — every violation kind (cycle, stale read, future
//    read, unknown version, duplicate version) plus the trust boundary and
//    the windowed-pruning floor, against hand-built histories;
//  * deterministic end-to-end lost updates: two manually interleaved
//    SiloTxns where the second commit skips validation
//    (set_skip_validation), on both runtimes — the offline checker must
//    detect the violation and pinpoint the offending transaction;
//  * clean audited runs: online auditor status + reactdb_audit_* metrics,
//    offline re-check, and recovery interop (audited segments recover with
//    audit off; un-audited logs audit clean with zero txns).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/audit/checker.h"
#include "src/audit/online_auditor.h"
#include "src/runtime/reactdb.h"
#include "src/storage/tid.h"
#include "src/util/logging.h"
#include "src/workloads/smallbank/smallbank.h"

namespace reactdb {
namespace {

namespace fs = std::filesystem;
using audit::AuditDirectory;
using audit::Checker;
using audit::Violation;
using audit::ViolationKind;
using client::Database;
using logrec::AuditRecord;
using smallbank::CustomerName;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "reactdb_audit_" + name;
  fs::remove_all(dir);
  return dir;
}

// --- Checker unit tests ------------------------------------------------------

AuditRecord::Read Read(uint32_t slot, const std::string& key,
                       uint64_t observed) {
  AuditRecord::Read r;
  r.reactor = 0;
  r.slot = slot;
  r.key = key;
  r.observed = observed;
  return r;
}

AuditRecord::Write Write(uint32_t slot, const std::string& key) {
  AuditRecord::Write w;
  w.reactor = 0;
  w.slot = slot;
  w.key = key;
  return w;
}

AuditRecord Txn(uint64_t tid, std::vector<AuditRecord::Read> reads,
                std::vector<AuditRecord::Write> writes) {
  AuditRecord rec;
  rec.tid = tid;
  rec.reads = std::move(reads);
  rec.writes = std::move(writes);
  return rec;
}

TEST(Checker, CleanHistoryIsClean) {
  Checker checker;
  const uint64_t w = TidWord::Make(5, 1);
  const uint64_t r = TidWord::Make(5, 2);
  checker.AddAudit(0, Txn(w, {}, {Write(0, "k")}));
  checker.AddAudit(0, Txn(r, {Read(0, "k", w)}, {}));
  checker.FinalizeUpTo(5);
  EXPECT_TRUE(checker.clean());
  EXPECT_EQ(2u, checker.stats().txns);
  EXPECT_EQ(1u, checker.stats().reads);
  EXPECT_EQ(1u, checker.stats().writes);
  EXPECT_GE(checker.stats().edges, 1u) << "the WR edge must materialize";
}

TEST(Checker, InitialVersionObservationHasNoWriter) {
  Checker checker;
  // observed == 0 is "no prior version": never an unknown-version report.
  checker.AddAudit(0, Txn(TidWord::Make(4, 1), {Read(0, "fresh", 0)},
                          {Write(0, "fresh")}));
  checker.FinalizeUpTo(4);
  EXPECT_TRUE(checker.clean());
}

TEST(Checker, LostUpdateCycleDetectedAndPinpointed) {
  Checker checker;
  const uint64_t v0 = TidWord::Make(5, 1);
  const uint64_t tid_b = TidWord::Make(5, 2);
  const uint64_t tid_r = TidWord::Make(5, 3);
  // A installs v0; B overwrites it; R also read v0 (missed B's version) and
  // writes the successor of B — the classic lost update, one epoch.
  checker.AddAudit(0, Txn(v0, {}, {Write(0, "k")}));
  checker.AddAudit(0, Txn(tid_b, {Read(0, "k", v0)}, {Write(0, "k")}));
  checker.AddAudit(1, Txn(tid_r, {Read(0, "k", v0)}, {Write(0, "k")}));
  checker.FinalizeUpTo(5);
  ASSERT_FALSE(checker.clean());
  const Violation& v = checker.violations().front();
  EXPECT_EQ(ViolationKind::kCycle, v.kind);
  EXPECT_EQ(5u, v.epoch);
  // Pinpoint: minimal (tid, container, ordinal) in the cycle {B, R}.
  EXPECT_EQ(tid_b, v.tid);
  EXPECT_NE(std::string::npos, v.detail.find("cycle of 2")) << v.detail;
  EXPECT_NE(std::string::npos, v.detail.find("back to first")) << v.detail;
  EXPECT_NE(std::string::npos,
            audit::FormatViolation(v).find("cycle"));
}

TEST(Checker, StaleReadAcrossEpochsIsViolationByItself) {
  Checker checker;
  const uint64_t v0 = TidWord::Make(5, 1);
  const uint64_t v1 = TidWord::Make(6, 1);
  const uint64_t reader = TidWord::Make(7, 1);
  checker.AddAudit(0, Txn(v0, {}, {Write(0, "k")}));
  checker.AddAudit(0, Txn(v1, {}, {Write(0, "k")}));
  // Committed in epoch 7 having observed a version overwritten in epoch 6:
  // the RW edge would point backward in epoch order.
  checker.AddAudit(0, Txn(reader, {Read(0, "k", v0)}, {}));
  checker.FinalizeUpTo(7);
  ASSERT_FALSE(checker.clean());
  EXPECT_EQ(ViolationKind::kStaleRead, checker.violations()[0].kind);
  EXPECT_EQ(reader, checker.violations()[0].tid);
  EXPECT_EQ(7u, checker.violations()[0].epoch);
}

TEST(Checker, FutureReadDetected) {
  Checker checker;
  const uint64_t writer = TidWord::Make(6, 1);
  const uint64_t reader = TidWord::Make(5, 1);
  checker.AddAudit(0, Txn(writer, {}, {Write(0, "k")}));
  checker.AddAudit(0, Txn(reader, {Read(0, "k", writer)}, {}));
  checker.FinalizeUpTo(6);
  ASSERT_FALSE(checker.clean());
  EXPECT_EQ(ViolationKind::kFutureRead, checker.violations()[0].kind);
  EXPECT_EQ(reader, checker.violations()[0].tid);
}

TEST(Checker, TrustBoundarySeparatesSkipsFromUnknownVersions) {
  const uint64_t old_obs = TidWord::Make(3, 7);
  const uint64_t reader = TidWord::Make(9, 1);
  {
    // Below the trust boundary: pre-audit history, skipped not flagged.
    Checker checker;
    checker.set_trusted_before(4);
    checker.AddAudit(0, Txn(reader, {Read(0, "k", old_obs)}, {}));
    checker.FinalizeUpTo(9);
    EXPECT_TRUE(checker.clean());
    EXPECT_EQ(1u, checker.stats().trusted_skips);
  }
  {
    // At/after the boundary: a version nobody produced is a violation.
    Checker checker;
    checker.set_trusted_before(3);
    checker.AddAudit(0, Txn(reader, {Read(0, "k", old_obs)}, {}));
    checker.FinalizeUpTo(9);
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(ViolationKind::kUnknownVersion, checker.violations()[0].kind);
    EXPECT_EQ(0u, checker.stats().trusted_skips);
  }
}

TEST(Checker, CheckpointRowsFormTrustedFloor) {
  Checker checker;
  checker.set_trusted_before(5);
  const uint64_t ckpt_tid = TidWord::Make(4, 2);
  logrec::RedoRecord row;
  row.kind = logrec::RecordKind::kPut;
  row.reactor = 0;
  row.slot = 0;
  row.key = "k";
  row.tid = ckpt_tid;
  checker.AddCheckpointRow(row);
  // A reader observing the checkpointed version resolves it (no unknown
  // version), and no stale-read fires because nothing overwrote it.
  checker.AddAudit(0, Txn(TidWord::Make(6, 1), {Read(0, "k", ckpt_tid)}, {}));
  checker.FinalizeUpTo(6);
  EXPECT_TRUE(checker.clean());
}

TEST(Checker, DuplicateVersionClaimDetected) {
  Checker checker;
  const uint64_t tid = TidWord::Make(5, 1);
  // Two distinct transactions (different containers) claim the same
  // (key, TID) version: impossible under locked install, so capture
  // corruption.
  checker.AddAudit(0, Txn(tid, {}, {Write(0, "k")}));
  checker.AddAudit(1, Txn(tid, {}, {Write(0, "k")}));
  checker.FinalizeUpTo(5);
  ASSERT_FALSE(checker.clean());
  EXPECT_EQ(ViolationKind::kDuplicateVersion, checker.violations()[0].kind);
}

TEST(Checker, WindowedPruningKeepsFloorStaleReadsStillCaught) {
  Checker checker(/*window_epochs=*/2);
  for (uint64_t e = 1; e <= 6; ++e) {
    checker.AddAudit(0, Txn(TidWord::Make(e, 1), {}, {Write(0, "k")}));
    checker.FinalizeUpTo(e);
  }
  EXPECT_TRUE(checker.clean());
  // Epoch-1 history is long pruned; a reader in epoch 7 observing it must
  // still fail the successor-direction check against the retained floor.
  checker.AddAudit(
      0, Txn(TidWord::Make(7, 1), {Read(0, "k", TidWord::Make(1, 1))}, {}));
  checker.FinalizeUpTo(7);
  ASSERT_FALSE(checker.clean());
  EXPECT_EQ(ViolationKind::kStaleRead, checker.violations()[0].kind);
}

TEST(Checker, FinalizeIsIdempotentAndMonotonic) {
  Checker checker;
  checker.AddAudit(0, Txn(TidWord::Make(5, 1), {}, {Write(0, "k")}));
  checker.FinalizeUpTo(5);
  checker.FinalizeUpTo(5);
  checker.FinalizeUpTo(3);  // non-advancing horizon is a no-op
  EXPECT_TRUE(checker.clean());
  EXPECT_EQ(1u, checker.stats().epochs_checked);
  EXPECT_EQ(5u, checker.finalized_epoch());
}

// --- Deterministic end-to-end lost update ------------------------------------

constexpr int64_t kCustomers = 8;
constexpr int64_t kCustId = 1;  // smallbank: single customer id per reactor

struct Rig {
  std::unique_ptr<ReactorDatabaseDef> def;
  Database db;

  explicit Rig(Database::Options options, const std::string& dir) {
    def = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def.get(), kCustomers);
    options.data_dir = dir;
    options.audit = true;
    REACTDB_CHECK_OK(
        db.Open(def.get(), DeploymentConfig::SharedNothing(2), options));
    REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
  }
};

/// Interleaves two transactions on one savings row so the second commit is
/// only possible because it skips read-set validation: both read v0, t2
/// commits an update, then t1 (skip_validation) commits an update computed
/// from the stale read. Returns {t2_tid, t1_tid}.
std::pair<uint64_t, uint64_t> InjectLostUpdate(Database& db) {
  Reactor* r = db.FindReactor(CustomerName(0));
  REACTDB_CHECK(r != nullptr);
  Table* savings = r->FindTable(smallbank::kSavingsSlot);
  const uint32_t c = r->container_id();
  RuntimeBase* rt = db.runtime();
  TidSource tids;
  Row key{Value(kCustId)};

  SiloTxn t1(rt->epochs());
  t1.BindLog(db.durability()->direct_shard());
  t1.EnableAuditCapture();
  SiloTxn t2(rt->epochs());
  t2.BindLog(db.durability()->direct_shard());
  t2.EnableAuditCapture();

  StatusOr<Row> b1 = t1.Get(savings, key, c);
  REACTDB_CHECK_OK(b1.status());
  StatusOr<Row> b2 = t2.Get(savings, key, c);
  REACTDB_CHECK_OK(b2.status());

  REACTDB_CHECK_OK(t2.Update(
      savings, key, {Value(kCustId), Value((*b2)[1].AsNumeric() + 100)}, c));
  StatusOr<uint64_t> tid2 = t2.Commit(&tids);
  REACTDB_CHECK_OK(tid2.status());

  REACTDB_CHECK_OK(t1.Update(
      savings, key, {Value(kCustId), Value((*b1)[1].AsNumeric() + 1)}, c));
  // Without this, Commit would abort on the TID change t2 installed.
  t1.set_skip_validation(true);
  StatusOr<uint64_t> tid1 = t1.Commit(&tids);
  REACTDB_CHECK_OK(tid1.status());
  REACTDB_CHECK(*tid1 > *tid2);
  return {*tid2, *tid1};
}

TEST(AuditEndToEnd, LostUpdatePinpointedSim) {
  std::string dir = FreshDir("lost_update_sim");
  Rig rig(Database::Sim(), dir);
  auto [tid2, tid1] = InjectLostUpdate(rig.db);
  rig.db.WaitDurable();
  rig.db.Shutdown();

  // The trailing online auditor latched the violation (sim drains inline —
  // fully deterministic).
  audit::AuditorStatus online = rig.db.AuditStatus();
  EXPECT_TRUE(online.violation) << "online auditor missed the lost update";
  EXPECT_FALSE(online.first_violation.empty());
  std::string prom = rig.db.Stats().ToPrometheus();
  EXPECT_NE(std::string::npos, prom.find("reactdb_audit_violation")) << prom;

  // The offline checker re-detects it from the segments alone and
  // pinpoints the first transaction of the cycle (both committed in the
  // same epoch here: no executor traffic advances the sim epoch clock).
  auto offline = AuditDirectory(dir);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  ASSERT_FALSE(offline->clean()) << "offline checker missed the lost update";
  const Violation& v = offline->violations.front();
  EXPECT_EQ(ViolationKind::kCycle, v.kind);
  EXPECT_EQ(tid2, v.tid) << audit::FormatViolation(v);
  EXPECT_NE(std::string::npos, v.detail.find("cycle of 2")) << v.detail;
}

TEST(AuditEndToEnd, LostUpdateDetectedThreads) {
  std::string dir = FreshDir("lost_update_threads");
  Rig rig(Database::Threads(), dir);
  auto [tid2, tid1] = InjectLostUpdate(rig.db);
  rig.db.WaitDurable();
  rig.db.Shutdown();

  auto offline = AuditDirectory(dir);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  ASSERT_FALSE(offline->clean()) << "offline checker missed the lost update";
  // The epoch ticker may split the two commits across epochs, turning the
  // intra-epoch cycle into a stale read; either way the violation names
  // one of the two conspirators.
  const Violation& v = offline->violations.front();
  EXPECT_TRUE(v.tid == tid1 || v.tid == tid2) << audit::FormatViolation(v);
}

// --- Clean audited runs, metrics, and recovery interop -----------------------

void RunTransfers(Database& db, int count) {
  client::SessionOptions sopts;
  sopts.max_outstanding = 8;
  sopts.retry.max_attempts = 50;
  sopts.retry.initial_backoff_us = 10;
  auto session = db.CreateSession(sopts);
  smallbank::Handles handles =
      smallbank::ResolveHandles(db.runtime(), kCustomers);
  for (int i = 0; i < count; ++i) {
    session
        ->Submit(handles.customers[static_cast<size_t>(4 + i % 4)],
                 smallbank::kTransferProc,
                 {Value(CustomerName(i % 4)), Value(1.0), Value(false)})
        .Then([](client::TxnOutcome) {});
  }
  session->Drain();
  EXPECT_EQ(static_cast<uint64_t>(count), session->stats().committed);
}

TEST(AuditEndToEnd, CleanRunAuditsCleanWithMetrics) {
  std::string dir = FreshDir("clean_sim");
  Rig rig(Database::Sim(), dir);
  RunTransfers(rig.db, 40);

  std::string prom = rig.db.Stats().ToPrometheus();
  EXPECT_NE(std::string::npos, prom.find("reactdb_audit_records_total"))
      << prom;
  EXPECT_NE(std::string::npos, prom.find("reactdb_audit_lag_epochs")) << prom;

  rig.db.Shutdown();
  audit::AuditorStatus online = rig.db.AuditStatus();
  EXPECT_FALSE(online.violation) << online.first_violation;
  EXPECT_GT(online.records, 0u);
  EXPECT_GT(online.frames, 0u);
  EXPECT_EQ(0u, online.lag_epochs)
      << "shutdown drains the auditor to the durable horizon";

  auto offline = AuditDirectory(dir);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  EXPECT_TRUE(offline->clean())
      << audit::FormatViolation(offline->violations.front());
  EXPECT_GT(offline->stats.txns, 0u);
  EXPECT_GT(offline->frames, 0u);
}

TEST(AuditEndToEnd, CleanRunAuditsCleanThreads) {
  std::string dir = FreshDir("clean_threads");
  Rig rig(Database::Threads(), dir);
  RunTransfers(rig.db, 40);
  rig.db.Shutdown();
  EXPECT_FALSE(rig.db.AuditStatus().violation)
      << rig.db.AuditStatus().first_violation;
  auto offline = AuditDirectory(dir);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  EXPECT_TRUE(offline->clean())
      << audit::FormatViolation(offline->violations.front());
  EXPECT_GT(offline->stats.txns, 0u);
}

// Mixed redo+audit segments recover through the pre-audit replay path: a
// reopen with audit off must fully recover the audited run's state.
TEST(AuditEndToEnd, AuditedSegmentsRecoverWithAuditOff) {
  std::string dir = FreshDir("recover_interop");
  double balance_before = 0;
  {
    Rig rig(Database::Sim(), dir);
    RunTransfers(rig.db, 20);
    balance_before =
        smallbank::TotalBalance(rig.db.runtime(), kCustomers).value();
    rig.db.Shutdown();
  }
  {
    auto def = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def.get(), kCustomers);
    Database db;
    Database::Options options = Database::Sim();
    options.data_dir = dir;  // audit OFF: the old replay path
    REACTDB_CHECK_OK(
        db.Open(def.get(), DeploymentConfig::SharedNothing(2), options));
    EXPECT_TRUE(db.recovered());
    EXPECT_EQ(nullptr, db.auditor());
    EXPECT_DOUBLE_EQ(balance_before,
                     smallbank::TotalBalance(db.runtime(), kCustomers).value());
    db.Shutdown();
  }
}

// A log written without audit mode still audits: nothing to check, clean.
TEST(AuditEndToEnd, UnAuditedLogAuditsCleanWithZeroTxns) {
  std::string dir = FreshDir("no_audit_records");
  {
    auto def = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def.get(), kCustomers);
    Database db;
    Database::Options options = Database::Sim();
    options.data_dir = dir;
    REACTDB_CHECK_OK(
        db.Open(def.get(), DeploymentConfig::SharedNothing(2), options));
    REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
    RunTransfers(db, 10);
    db.Shutdown();
  }
  auto offline = AuditDirectory(dir);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  EXPECT_TRUE(offline->clean());
  EXPECT_EQ(0u, offline->stats.txns);
  EXPECT_GT(offline->stats.versions, 0u) << "redo versions still ingested";
}

TEST(AuditEndToEnd, AuditWithoutDataDirIsInvalid) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  Database db;
  Database::Options options = Database::Sim();
  options.audit = true;  // no data_dir
  Status s = db.Open(def.get(), DeploymentConfig::SharedNothing(2), options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, s.code());
}

}  // namespace
}  // namespace reactdb

// Per-procedure workload tests: the remaining Smallbank procedures
// (balance, write_check, amalgamate, deposit_checking), TPC-C generator
// properties, and cross-runtime agreement of procedure results.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/runtime/reactdb.h"
#include "src/util/logging.h"
#include "src/workloads/smallbank/smallbank.h"
#include "src/workloads/tpcc/tpcc.h"

namespace reactdb {
namespace {

using smallbank::CustomerName;

class SmallbankProcsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    def_ = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def_.get(), 8);
    rt_ = std::make_unique<SimRuntime>();
    ASSERT_TRUE(
        rt_->Bootstrap(def_.get(), DeploymentConfig::SharedNothing(4)).ok());
    ASSERT_TRUE(smallbank::Load(rt_.get(), 8, /*initial_savings=*/100.0,
                                /*initial_checking=*/50.0)
                    .ok());
  }

  ProcResult Run(int64_t customer, const std::string& proc, Row args = {}) {
    return rt_->Execute(CustomerName(customer), proc, std::move(args));
  }

  std::unique_ptr<ReactorDatabaseDef> def_;
  std::unique_ptr<SimRuntime> rt_;
};

TEST_F(SmallbankProcsTest, BalanceSumsSavingsAndChecking) {
  ProcResult r = Run(0, "balance");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(150.0, r->AsNumeric());
}

TEST_F(SmallbankProcsTest, DepositChecking) {
  ASSERT_TRUE(Run(1, "deposit_checking", {Value(25.0)}).ok());
  EXPECT_DOUBLE_EQ(175.0, Run(1, "balance")->AsNumeric());
  // Negative deposit is a user abort per the benchmark.
  ProcResult bad = Run(1, "deposit_checking", {Value(-5.0)});
  EXPECT_TRUE(bad.status().IsUserAbort());
  EXPECT_DOUBLE_EQ(175.0, Run(1, "balance")->AsNumeric());
}

TEST_F(SmallbankProcsTest, TransactSavingRejectsOverdraft) {
  EXPECT_TRUE(Run(2, "transact_saving", {Value(-60.0)}).ok());
  ProcResult overdraft = Run(2, "transact_saving", {Value(-60.0)});
  EXPECT_TRUE(overdraft.status().IsUserAbort());
  EXPECT_DOUBLE_EQ(90.0, Run(2, "balance")->AsNumeric());
}

TEST_F(SmallbankProcsTest, WriteCheckAppliesOverdraftPenalty) {
  // Total 150; check within limits: no penalty.
  ASSERT_TRUE(Run(3, "write_check", {Value(40.0)}).ok());
  EXPECT_DOUBLE_EQ(110.0, Run(3, "balance")->AsNumeric());
  // Check above total: 1.0 penalty (balance goes negative on checking).
  ASSERT_TRUE(Run(3, "write_check", {Value(200.0)}).ok());
  EXPECT_DOUBLE_EQ(110.0 - 200.0 - 1.0, Run(3, "balance")->AsNumeric());
}

TEST_F(SmallbankProcsTest, AmalgamateMovesEverything) {
  // Customer 4 (container 2) amalgamates into customer 1 (container 0):
  // a cross-container transaction.
  ASSERT_TRUE(Run(4, "amalgamate", {Value(CustomerName(1))}).ok());
  EXPECT_DOUBLE_EQ(0.0, Run(4, "balance")->AsNumeric());
  EXPECT_DOUBLE_EQ(300.0, Run(1, "balance")->AsNumeric());
}

TEST_F(SmallbankProcsTest, ResultsAgreeWithThreadRuntime) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), 8);
  ThreadRuntime trt;
  ASSERT_TRUE(trt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  ASSERT_TRUE(smallbank::Load(&trt, 8, 100.0, 50.0).ok());
  ASSERT_TRUE(trt.Start().ok());
  // Same sequence of operations on both runtimes.
  for (RuntimeBase* rt : {static_cast<RuntimeBase*>(rt_.get()),
                          static_cast<RuntimeBase*>(&trt)}) {
    (void)rt;
  }
  auto run_sequence = [](auto&& exec) {
    EXPECT_TRUE(exec(CustomerName(5), "transact_saving",
                     Row{Value(30.0)})
                    .ok());
    EXPECT_TRUE(exec(CustomerName(5), "transfer",
                     Row{Value(CustomerName(6)), Value(20.0), Value(false)})
                    .ok());
    return exec(CustomerName(5), "balance", Row{});
  };
  ProcResult sim = run_sequence([this](const std::string& r,
                                       const std::string& p, Row a) {
    return rt_->Execute(r, p, std::move(a));
  });
  ProcResult thread = run_sequence([&trt](const std::string& r,
                                          const std::string& p, Row a) {
    return trt.Execute(r, p, std::move(a));
  });
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE(thread.ok());
  EXPECT_DOUBLE_EQ(sim->AsNumeric(), thread->AsNumeric());
  trt.Stop();
}

// --- TPC-C generator properties ----------------------------------------------

TEST(TpccGeneratorTest, LastNameSyllables) {
  EXPECT_EQ("BARBARBAR", tpcc::LastName(0));
  EXPECT_EQ("OUGHTOUGHTOUGHT", tpcc::LastName(111));
  EXPECT_EQ("BARPRESEING", tpcc::LastName(49));
  EXPECT_EQ("EINGEINGEING", tpcc::LastName(999));
}

TEST(TpccGeneratorTest, MixRespectsWeights) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = 2;
  tpcc::Generator gen(options, 42);
  std::map<std::string, int> counts;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) counts[gen.Next(1).proc]++;
  EXPECT_NEAR(0.45, counts["new_order"] / double(kN), 0.02);
  EXPECT_NEAR(0.43, counts["payment"] / double(kN), 0.02);
  EXPECT_NEAR(0.04, counts["order_status"] / double(kN), 0.01);
  EXPECT_NEAR(0.04, counts["delivery"] / double(kN), 0.01);
  EXPECT_NEAR(0.04, counts["stock_level"] / double(kN), 0.01);
}

TEST(TpccGeneratorTest, NewOrderShape) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = 4;
  options.remote_item_prob = 0.5;
  tpcc::Generator gen(options, 43);
  int remote_items = 0;
  int total_items = 0;
  for (int i = 0; i < 2000; ++i) {
    tpcc::TxnRequest req = gen.MakeNewOrder(2);
    EXPECT_EQ("new_order", req.proc);
    EXPECT_EQ(tpcc::WarehouseName(2), req.reactor);
    int64_t n = req.args[5].AsInt64();
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 15);
    ASSERT_EQ(6u + 3 * n, req.args.size());
    for (int64_t j = 0; j < n; ++j) {
      const std::string& supply = req.args[6 + j * 3 + 1].AsString();
      ++total_items;
      if (!supply.empty()) {
        ++remote_items;
        EXPECT_NE(tpcc::WarehouseName(2), supply);  // never "remote to self"
      }
      int64_t qty = req.args[6 + j * 3 + 2].AsInt64();
      EXPECT_GE(qty, 1);
      EXPECT_LE(qty, 10);
    }
  }
  EXPECT_NEAR(0.5, remote_items / double(total_items), 0.05);
}

TEST(TpccGeneratorTest, SingleRemoteItemMode) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = 4;
  options.single_remote_item_prob = 0.3;
  tpcc::Generator gen(options, 44);
  int cross_txns = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    tpcc::TxnRequest req = gen.MakeNewOrder(1);
    int64_t n = req.args[5].AsInt64();
    int remote = 0;
    for (int64_t j = 0; j < n; ++j) {
      if (!req.args[6 + j * 3 + 1].AsString().empty()) ++remote;
    }
    EXPECT_LE(remote, 1);  // at most one remote item in this mode
    if (remote > 0) ++cross_txns;
  }
  EXPECT_NEAR(0.3, cross_txns / double(kN), 0.03);
}

TEST(TpccGeneratorTest, PaymentRemoteProbability) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = 4;
  options.remote_payment_prob = 0.15;
  tpcc::Generator gen(options, 45);
  int remote = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    tpcc::TxnRequest req = gen.MakePayment(1);
    if (!req.args[4].AsString().empty()) ++remote;
  }
  EXPECT_NEAR(0.15, remote / double(kN), 0.02);
}

TEST(TpccGeneratorTest, SingleWarehouseNeverRemote) {
  tpcc::GeneratorOptions options;
  options.num_warehouses = 1;
  options.remote_item_prob = 1.0;
  options.remote_payment_prob = 1.0;
  tpcc::Generator gen(options, 46);
  for (int i = 0; i < 200; ++i) {
    tpcc::TxnRequest no = gen.MakeNewOrder(1);
    int64_t n = no.args[5].AsInt64();
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_TRUE(no.args[6 + j * 3 + 1].AsString().empty());
    }
    tpcc::TxnRequest pay = gen.MakePayment(1);
    EXPECT_TRUE(pay.args[4].AsString().empty());
  }
}

}  // namespace
}  // namespace reactdb

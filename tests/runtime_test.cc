// Runtime tests: deployment configuration, routing/placement, MPL
// admission, runtime statistics, cross-runtime result agreement, and
// concurrency-control aborts through the full stack.
#include <gtest/gtest.h>

#include <memory>

#include "src/runtime/reactdb.h"
#include "src/util/logging.h"

namespace reactdb {
namespace {

// --- DeploymentConfig ---------------------------------------------------

TEST(DeploymentConfigTest, Presets) {
  DeploymentConfig s1 = DeploymentConfig::SharedEverythingWithoutAffinity(8);
  EXPECT_EQ(1, s1.num_containers);
  EXPECT_EQ(8, s1.executors_per_container);
  EXPECT_EQ(RootRouting::kRoundRobin, s1.routing);

  DeploymentConfig s2 = DeploymentConfig::SharedEverythingWithAffinity(8);
  EXPECT_EQ(RootRouting::kAffinity, s2.routing);
  EXPECT_EQ(1, s2.mpl);  // runs each transaction to completion

  DeploymentConfig s3 = DeploymentConfig::SharedNothing(8);
  EXPECT_EQ(8, s3.num_containers);
  EXPECT_EQ(1, s3.executors_per_container);
  EXPECT_EQ(8, s3.total_executors());
}

TEST(DeploymentConfigTest, RangePlacementIsContiguousAndBalanced) {
  DeploymentConfig dc = DeploymentConfig::SharedNothing(4);
  std::vector<uint32_t> containers;
  for (size_t i = 0; i < 100; ++i) {
    containers.push_back(dc.PlaceReactor("r", i, 100));
  }
  EXPECT_TRUE(std::is_sorted(containers.begin(), containers.end()));
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(25, std::count(containers.begin(), containers.end(), c));
  }
}

TEST(DeploymentConfigTest, CustomPlacement) {
  DeploymentConfig dc = DeploymentConfig::SharedNothing(3);
  dc.placement = [](const std::string& name, size_t, size_t, uint32_t) {
    return name == "special" ? 2u : 0u;
  };
  EXPECT_EQ(2u, dc.PlaceReactor("special", 0, 10));
  EXPECT_EQ(0u, dc.PlaceReactor("normal", 5, 10));
}

TEST(DeploymentConfigTest, FromConfigFile) {
  Config config = Config::Parse(
                      "[database]\n"
                      "deployment = shared-everything-with-affinity\n"
                      "executors_per_container = 6\n"
                      "[executor]\n"
                      "mpl = 3\n")
                      .value();
  StatusOr<DeploymentConfig> dc = DeploymentConfig::FromConfig(config);
  ASSERT_TRUE(dc.ok());
  EXPECT_EQ(6, dc->executors_per_container);
  EXPECT_EQ(3, dc->mpl);
  EXPECT_EQ(RootRouting::kAffinity, dc->routing);

  Config bad = Config::Parse("[database]\ndeployment = magic\n").value();
  EXPECT_FALSE(DeploymentConfig::FromConfig(bad).ok());
}

// --- Full-stack fixtures ------------------------------------------------------

Proc GetCounter(TxnContext& ctx, Row) {
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  co_return row[1];
}

Proc Bump(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  int64_t v = row[1].AsInt64() + by;
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})}, {Value(int64_t{0}), Value(v)}));
  co_return Value(v);
}

// bump_all: asynchronous bump on every named reactor.
Proc BumpAll(TxnContext& ctx, Row args) {
  std::vector<Future> futures;
  for (const Value& name : args) {
    futures.push_back(ctx.CallOn(name.AsString(), "bump", {Value(int64_t{1})}));
  }
  int64_t total = 0;
  for (Future& f : futures) {
    ProcResult r = co_await f;
    REACTDB_CO_RETURN_IF_ERROR(r.status());
    total += r->AsInt64();
  }
  co_return Value(total);
}

// bump_then_fail: effects must be rolled back everywhere.
Proc BumpThenFail(TxnContext& ctx, Row args) {
  Future f = ctx.CallOn(args[0].AsString(), "bump", {Value(int64_t{1})});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Status::UserAbort("deliberate");
}

std::unique_ptr<ReactorDatabaseDef> CounterDef(int n) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Counter");
  t.AddSchema(SchemaBuilder("counter")
                  .AddColumn("k", ValueType::kInt64)
                  .AddColumn("v", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("get", &GetCounter);
  t.AddProcedure("bump", &Bump);
  t.AddProcedure("bump_all", &BumpAll);
  t.AddProcedure("bump_then_fail", &BumpThenFail);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
  return def;
}

Status LoadCounters(RuntimeBase* rt, int n) {
  return rt->RunDirect([rt, n](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      std::string name = "c" + std::to_string(i);
      REACTDB_ASSIGN_OR_RETURN(Table * t, rt->FindTable(name, "counter"));
      REACTDB_RETURN_IF_ERROR(
          txn.Insert(t, {Value(int64_t{0}), Value(int64_t{0})},
                     rt->FindReactor(name)->container_id()));
    }
    return Status::OK();
  });
}

// Parameterized across deployments: identical semantics everywhere.
struct DeployCase {
  const char* name;
  DeploymentConfig dc;
};

class CrossDeploymentTest : public ::testing::TestWithParam<int> {
 protected:
  static DeploymentConfig Deployment() {
    switch (GetParam()) {
      case 0:
        return DeploymentConfig::SharedNothing(4);
      case 1:
        return DeploymentConfig::SharedEverythingWithAffinity(4);
      case 2:
        return DeploymentConfig::SharedEverythingWithoutAffinity(4);
      default:
        return DeploymentConfig::SharedNothing(2);
    }
  }
};

TEST_P(CrossDeploymentTest, BumpAllCommitsAtomically) {
  auto def = CounterDef(8);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), Deployment()).ok());
  ASSERT_TRUE(LoadCounters(&rt, 8).ok());
  ProcResult r = rt.Execute(
      "c0", "bump_all",
      {Value("c1"), Value("c3"), Value("c5"), Value("c7")});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(4, r->AsInt64());
  for (int i = 0; i < 8; ++i) {
    ProcResult v = rt.Execute("c" + std::to_string(i), "get", {});
    EXPECT_EQ(i % 2 == 1 ? 1 : 0, v->AsInt64()) << "c" << i;
  }
  EXPECT_EQ(9u, rt.stats().committed.load());  // bump_all + 8 gets
}

TEST_P(CrossDeploymentTest, UserAbortRollsBackRemoteEffects) {
  auto def = CounterDef(4);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), Deployment()).ok());
  ASSERT_TRUE(LoadCounters(&rt, 4).ok());
  ProcResult r = rt.Execute("c0", "bump_then_fail", {Value("c2")});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUserAbort());
  ProcResult v = rt.Execute("c2", "get", {});
  EXPECT_EQ(0, v->AsInt64());  // the remote bump rolled back
  EXPECT_EQ(1u, rt.stats().aborted_user.load());
}

INSTANTIATE_TEST_SUITE_P(Deployments, CrossDeploymentTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(RuntimeStatsTest, CountsCommitAndAbortKinds) {
  auto def = CounterDef(4);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(4)).ok());
  ASSERT_TRUE(LoadCounters(&rt, 4).ok());
  ASSERT_TRUE(rt.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  ASSERT_FALSE(rt.Execute("c0", "bump_then_fail", {Value("c1")}).ok());
  EXPECT_EQ(1u, rt.stats().committed.load());
  EXPECT_EQ(1u, rt.stats().aborted_user.load());
  EXPECT_EQ(1u, rt.stats().total_aborted());
}

TEST(RuntimeRoutingTest, AffinityKeepsReactorOnHomeExecutor) {
  auto def = CounterDef(8);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(),
                           DeploymentConfig::SharedEverythingWithAffinity(4))
                  .ok());
  // 8 reactors over 4 executors in one container: two each, stable mapping.
  std::set<uint32_t> homes;
  for (int i = 0; i < 8; ++i) {
    homes.insert(rt.HomeExecutorOf("c" + std::to_string(i)));
  }
  EXPECT_EQ(4u, homes.size());
  EXPECT_EQ(rt.HomeExecutorOf("c0"),
            rt.FindReactor("c0")->home_executor());
}

TEST(RuntimeMplTest, MplOneStillCompletesConcurrentSubmissions) {
  auto def = CounterDef(2);
  SimRuntime rt;
  DeploymentConfig dc = DeploymentConfig::SharedNothing(2, /*mpl=*/1);
  ASSERT_TRUE(rt.Bootstrap(def.get(), dc).ok());
  ASSERT_TRUE(LoadCounters(&rt, 2).ok());
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rt.Submit("c0", "bump", {Value(int64_t{1})},
                          [&done](ProcResult r, const RootTxn&) {
                            EXPECT_TRUE(r.ok());
                            ++done;
                          })
                    .ok());
  }
  rt.RunAll();
  EXPECT_EQ(10, done);
  ProcResult v = rt.Execute("c0", "get", {});
  EXPECT_EQ(10, v->AsInt64());
}

TEST(RuntimeConflictTest, ConcurrentRootsOnOneReactorSerialize) {
  auto def = CounterDef(1);
  SimRuntime rt;
  // Two executors sharing one container: round-robin routing makes both
  // executors run transactions on the same reactor concurrently — OCC must
  // serialize them (some retries may be needed).
  ASSERT_TRUE(rt.Bootstrap(def.get(),
                           DeploymentConfig::SharedEverythingWithoutAffinity(2))
                  .ok());
  ASSERT_TRUE(LoadCounters(&rt, 1).ok());
  int committed = 0;
  int aborted = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(rt.Submit("c0", "bump", {Value(int64_t{1})},
                          [&](ProcResult r, const RootTxn&) {
                            if (r.ok()) {
                              ++committed;
                            } else {
                              EXPECT_TRUE(r.status().IsAborted());
                              ++aborted;
                            }
                          })
                    .ok());
  }
  rt.RunAll();
  EXPECT_EQ(40, committed + aborted);
  ProcResult v = rt.Execute("c0", "get", {});
  // Exactly the committed bumps are visible — no lost updates.
  EXPECT_EQ(committed, v->AsInt64());
}

TEST(RunDirectTest, CommitAndAbortPaths) {
  auto def = CounterDef(1);
  SimRuntime rt;
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  ASSERT_TRUE(LoadCounters(&rt, 1).ok());
  // Error from the body aborts the direct transaction.
  Status s = rt.RunDirect([](SiloTxn&) { return Status::Internal("stop"); });
  EXPECT_EQ(StatusCode::kInternal, s.code());
  ProcResult v = rt.Execute("c0", "get", {});
  EXPECT_EQ(0, v->AsInt64());
}

TEST(BootstrapTest, Validation) {
  auto def = CounterDef(1);
  SimRuntime rt;
  DeploymentConfig bad;
  bad.num_containers = 0;
  EXPECT_FALSE(rt.Bootstrap(def.get(), bad).ok());
  ASSERT_TRUE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  EXPECT_FALSE(rt.Bootstrap(def.get(), DeploymentConfig::SharedNothing(1)).ok())
      << "double bootstrap must fail";
}

}  // namespace
}  // namespace reactdb

// Unit and property tests for the storage layer: schemas, TID words, the
// B+-tree (against a std::map reference model), tables, and the catalog.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/storage/btree.h"
#include "src/storage/catalog.h"
#include "src/storage/schema.h"
#include "src/storage/table.h"
#include "src/util/keycodec.h"
#include "src/util/rng.h"

namespace reactdb {
namespace {

// --- Schema ------------------------------------------------------------

Schema MakeCustomerSchema() {
  return SchemaBuilder("customer")
      .AddColumn("d_id", ValueType::kInt64)
      .AddColumn("c_id", ValueType::kInt64)
      .AddColumn("last", ValueType::kString)
      .AddColumn("balance", ValueType::kDouble)
      .SetKey({"d_id", "c_id"})
      .AddIndex("by_name", {"d_id", "last"})
      .Build()
      .value();
}

TEST(Schema, BuilderResolvesColumns) {
  Schema s = MakeCustomerSchema();
  EXPECT_EQ("customer", s.table_name());
  EXPECT_EQ(4u, s.num_columns());
  EXPECT_EQ(0, s.ColumnId("d_id"));
  EXPECT_EQ(3, s.ColumnId("balance"));
  EXPECT_EQ(-1, s.ColumnId("missing"));
  ASSERT_EQ(1u, s.secondary_indexes().size());
  EXPECT_EQ("by_name", s.secondary_indexes()[0].name);
}

TEST(Schema, BuilderRejectsBadColumns) {
  EXPECT_FALSE(SchemaBuilder("t")
                   .AddColumn("a", ValueType::kInt64)
                   .SetKey({"zzz"})
                   .Build()
                   .ok());
  EXPECT_FALSE(SchemaBuilder("t").AddColumn("a", ValueType::kInt64).Build().ok());
  EXPECT_FALSE(SchemaBuilder("t")
                   .AddColumn("a", ValueType::kInt64)
                   .SetKey({"a"})
                   .AddIndex("i", {"nope"})
                   .Build()
                   .ok());
}

TEST(Schema, ExtractKeys) {
  Schema s = MakeCustomerSchema();
  Row row = {Value(int64_t{3}), Value(int64_t{7}), Value("BARBAR"),
             Value(10.5)};
  EXPECT_EQ(0, CompareRows({Value(int64_t{3}), Value(int64_t{7})},
                           s.ExtractKey(row)));
  EXPECT_EQ(0, CompareRows({Value(int64_t{3}), Value("BARBAR")},
                           s.ExtractIndexKey(s.secondary_indexes()[0], row)));
}

TEST(Schema, ValidateRow) {
  Schema s = MakeCustomerSchema();
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value(int64_t{2}), Value("x"),
                             Value(1.0)})
                  .ok());
  // Int into double column is fine; null anywhere is fine.
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value(int64_t{2}), Value("x"),
                             Value(int64_t{3})})
                  .ok());
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value::Null(), Value("x"),
                             Value(1.0)})
                  .ok());
  // Wrong arity / wrong type rejected.
  EXPECT_FALSE(s.ValidateRow({Value(int64_t{1})}).ok());
  EXPECT_FALSE(s.ValidateRow({Value("oops"), Value(int64_t{2}), Value("x"),
                              Value(1.0)})
                   .ok());
}

// --- TID words ----------------------------------------------------------

TEST(TidWord, BitLayout) {
  uint64_t tid = TidWord::Make(5, 1234);
  EXPECT_EQ(5u, TidWord::Epoch(tid));
  EXPECT_EQ(1234u, TidWord::Seq(tid));
  EXPECT_FALSE(TidWord::IsLocked(tid));
  EXPECT_FALSE(TidWord::IsAbsent(tid));
  EXPECT_TRUE(TidWord::IsLocked(TidWord::WithLock(tid)));
  EXPECT_TRUE(TidWord::IsAbsent(TidWord::WithAbsent(tid)));
  EXPECT_EQ(TidWord::Tid(tid),
            TidWord::Tid(TidWord::WithLock(TidWord::WithAbsent(tid))));
}

TEST(TidWord, LockProtocol) {
  std::atomic<uint64_t> word{TidWord::Make(1, 1)};
  EXPECT_TRUE(TryLockTid(&word));
  EXPECT_FALSE(TryLockTid(&word));
  UnlockTid(&word);
  EXPECT_TRUE(TryLockTid(&word));
  UnlockTid(&word);
  EXPECT_EQ(TidWord::Make(1, 1), StableTid(word));
}

// --- BTree ----------------------------------------------------------------

std::string K(int64_t i) { return EncodeKey({Value(i)}); }

TEST(BTree, GetMissReturnsLeafForNodeSet) {
  BTree tree;
  BTree::LookupResult r = tree.Get(K(1));
  EXPECT_EQ(nullptr, r.record);
  ASSERT_NE(nullptr, r.leaf);
  uint64_t v0 = r.leaf_version;
  tree.GetOrInsert(K(1));
  EXPECT_GT(BTree::LeafVersion(r.leaf), v0);  // phantom detectable
}

TEST(BTree, GetOrInsertIdempotent) {
  BTree tree;
  BTree::InsertResult first = tree.GetOrInsert(K(7));
  EXPECT_TRUE(first.created);
  BTree::InsertResult second = tree.GetOrInsert(K(7));
  EXPECT_FALSE(second.created);
  EXPECT_EQ(first.record, second.record);
  EXPECT_EQ(1u, tree.size());
}

TEST(BTree, SplitsPreserveOrderAndLinks) {
  BTree tree;
  constexpr int64_t kN = 5000;  // forces multi-level splits
  Rng rng(3);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < kN; ++i) keys.push_back(i);
  for (int64_t i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.NextInt(0, i)]);
  }
  for (int64_t k : keys) tree.GetOrInsert(K(k));
  EXPECT_EQ(static_cast<size_t>(kN), tree.size());
  // Full forward scan sees every key in order.
  int64_t expect = 0;
  tree.Scan("", "", [&expect](const std::string& key, Record*) {
    EXPECT_EQ(K(expect), key);
    ++expect;
    return true;
  });
  EXPECT_EQ(kN, expect);
  // Full reverse scan sees them backwards.
  expect = kN - 1;
  tree.ReverseScan("", "", [&expect](const std::string& key, Record*) {
    EXPECT_EQ(K(expect), key);
    --expect;
    return true;
  });
  EXPECT_EQ(-1, expect);
}

TEST(BTree, RangeScansRespectBounds) {
  BTree tree;
  for (int64_t i = 0; i < 100; ++i) tree.GetOrInsert(K(i * 2));  // evens
  std::vector<int64_t> seen;
  tree.Scan(K(10), K(20), [&seen](const std::string& key, Record*) {
    seen.push_back(DecodeKey(key).value()[0].AsInt64());
    return true;
  });
  EXPECT_EQ((std::vector<int64_t>{10, 12, 14, 16, 18}), seen);
  seen.clear();
  tree.ReverseScan(K(10), K(20), [&seen](const std::string& key, Record*) {
    seen.push_back(DecodeKey(key).value()[0].AsInt64());
    return true;
  });
  EXPECT_EQ((std::vector<int64_t>{18, 16, 14, 12, 10}), seen);
}

TEST(BTree, ScanEarlyStop) {
  BTree tree;
  for (int64_t i = 0; i < 100; ++i) tree.GetOrInsert(K(i));
  int count = 0;
  tree.Scan("", "", [&count](const std::string&, Record*) {
    return ++count < 5;
  });
  EXPECT_EQ(5, count);
}

// Property test: random interleaving of inserts/lookups/scans against a
// std::map reference model.
class BTreeModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeModelTest, MatchesReferenceModel) {
  BTree tree;
  std::map<std::string, bool> model;
  Rng rng(GetParam());
  for (int op = 0; op < 3000; ++op) {
    int64_t key = rng.NextInt(0, 800);
    switch (rng.NextInt(0, 2)) {
      case 0: {
        tree.GetOrInsert(K(key));
        model[K(key)] = true;
        break;
      }
      case 1: {
        BTree::LookupResult r = tree.Get(K(key));
        EXPECT_EQ(model.count(K(key)) > 0, r.record != nullptr) << key;
        break;
      }
      default: {
        int64_t lo = rng.NextInt(0, 800);
        int64_t hi = lo + rng.NextInt(0, 100);
        std::vector<std::string> got;
        tree.Scan(K(lo), K(hi), [&got](const std::string& k, Record*) {
          got.push_back(k);
          return true;
        });
        std::vector<std::string> want;
        for (auto it = model.lower_bound(K(lo));
             it != model.end() && it->first < K(hi); ++it) {
          want.push_back(it->first);
        }
        EXPECT_EQ(want, got);
        break;
      }
    }
  }
  EXPECT_EQ(model.size(), tree.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(BTree, LeafVersionBumpsOnInsertOnly) {
  BTree tree;
  BTree::InsertResult r = tree.GetOrInsert(K(5));
  uint64_t v = BTree::LeafVersion(r.leaf);
  tree.Get(K(5));                   // reads don't bump
  tree.GetOrInsert(K(5));           // existing key doesn't bump
  EXPECT_EQ(v, BTree::LeafVersion(r.leaf));
  tree.GetOrInsert(K(6));           // new key bumps
  EXPECT_GT(BTree::LeafVersion(r.leaf), v);
}

// --- Table / Catalog --------------------------------------------------------

TEST(Table, SecondaryEntryEncoding) {
  Table table(MakeCustomerSchema());
  ASSERT_EQ(1u, table.num_secondary_indexes());
  Row row = {Value(int64_t{1}), Value(int64_t{2}), Value("ABLE"), Value(0.0)};
  std::string entry = table.EncodeSecondaryEntry(0, row);
  std::string prefix =
      table.EncodeSecondaryPrefix(0, {Value(int64_t{1}), Value("ABLE")});
  EXPECT_EQ(0u, entry.find(prefix));  // entry starts with the search prefix
  EXPECT_GT(entry.size(), prefix.size());  // ... plus the primary key
  EXPECT_NE(nullptr, table.secondary("by_name"));
  EXPECT_EQ(nullptr, table.secondary("nope"));
}

TEST(Catalog, PerReactorNamespaces) {
  Catalog catalog;
  Schema schema = MakeCustomerSchema();
  ASSERT_TRUE(catalog.CreateTable("w_1", schema).ok());
  ASSERT_TRUE(catalog.CreateTable("w_2", schema).ok());
  EXPECT_FALSE(catalog.CreateTable("w_1", schema).ok());  // duplicate
  EXPECT_TRUE(catalog.GetTable("w_1", "customer").ok());
  EXPECT_FALSE(catalog.GetTable("w_3", "customer").ok());
  EXPECT_FALSE(catalog.GetTable("w_1", "orders").ok());
  EXPECT_EQ(2u, catalog.num_tables());
  EXPECT_EQ(1u, catalog.TablesOf("w_2").size());
  // Same-name tables in different reactors are distinct objects.
  EXPECT_NE(catalog.GetTable("w_1", "customer").value(),
            catalog.GetTable("w_2", "customer").value());
}

TEST(Catalog, SlotIndexResolvesWithoutNameMap) {
  Catalog catalog;
  Schema schema = MakeCustomerSchema();
  Table* t1 = catalog.CreateTable("w_1", schema).value();
  Table* t2 = catalog.CreateTable("w_2", schema).value();
  // Bootstrap registers each reactor's slot-ordered tables once; ReactorIds
  // are global, so a container's index is sparse over them.
  catalog.BindReactorTables(ReactorId{3}, {t1});
  catalog.BindReactorTables(ReactorId{7}, {t2});
  EXPECT_EQ(2u, catalog.num_bound_reactors());
  EXPECT_EQ(t1, catalog.FindBound(ReactorId{3}, TableSlot{0}));
  EXPECT_EQ(t2, catalog.FindBound(ReactorId{7}, TableSlot{0}));
  // Misses are nullptr, never out-of-bounds: unknown reactor, unbound
  // reactor in range, slot past the reactor's relations, invalid handles.
  EXPECT_EQ(nullptr, catalog.FindBound(ReactorId{5}, TableSlot{0}));
  EXPECT_EQ(nullptr, catalog.FindBound(ReactorId{100}, TableSlot{0}));
  EXPECT_EQ(nullptr, catalog.FindBound(ReactorId{3}, TableSlot{1}));
  EXPECT_EQ(nullptr, catalog.FindBound(ReactorId{}, TableSlot{0}));
  EXPECT_EQ(nullptr, catalog.FindBound(ReactorId{3}, TableSlot{}));
}

}  // namespace
}  // namespace reactdb

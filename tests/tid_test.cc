// TID word layout and epoch wraparound regression tests.
//
// The original layout gave the epoch 22 bits: past epoch 2^22,
// TidWord::Make overflowed the epoch into the absent bit and every
// committed record read as deleted (ROADMAP "TID epoch field wraps at
// 2^22"). The split is now 32 epoch bits / 30 sequence bits and Make masks
// the epoch away from the status bits; these tests cross the old boundary
// and commit/read through it.
#include <gtest/gtest.h>

#include "src/storage/table.h"
#include "src/storage/tid.h"
#include "src/txn/epoch.h"
#include "src/txn/silo_txn.h"

namespace reactdb {
namespace {

constexpr uint64_t kOldBoundary = 1ULL << 22;  // pre-fix epoch capacity

TEST(TidWordTest, Layout) {
  uint64_t word = TidWord::Make(5, 77);
  EXPECT_EQ(5u, TidWord::Epoch(word));
  EXPECT_EQ(77u, TidWord::Seq(word));
  EXPECT_FALSE(TidWord::IsLocked(word));
  EXPECT_FALSE(TidWord::IsAbsent(word));
  EXPECT_EQ(word, TidWord::Tid(word));
}

TEST(TidWordTest, EpochPastOldBoundaryDoesNotTouchStatusBits) {
  const uint64_t epochs[] = {kOldBoundary - 1, kOldBoundary, kOldBoundary + 1,
                             kOldBoundary * 13, (1ULL << 32) - 1};
  for (uint64_t epoch : epochs) {
    uint64_t word = TidWord::Make(epoch, 42);
    EXPECT_FALSE(TidWord::IsAbsent(word)) << "epoch " << epoch;
    EXPECT_FALSE(TidWord::IsLocked(word)) << "epoch " << epoch;
    EXPECT_EQ(epoch, TidWord::Epoch(word)) << "epoch " << epoch;
    EXPECT_EQ(42u, TidWord::Seq(word)) << "epoch " << epoch;
  }
}

TEST(TidWordTest, OrderingIsMonotoneAcrossOldBoundary) {
  uint64_t before = TidWord::Make(kOldBoundary - 1, 7);
  uint64_t at = TidWord::Make(kOldBoundary, 0);
  uint64_t after = TidWord::Make(kOldBoundary + 1, 0);
  EXPECT_LT(before, at);
  EXPECT_LT(at, after);
}

TEST(TidWordTest, MakeMasksWrappedEpochAwayFromStatusBits) {
  // Past 2^32 epochs the field wraps (documented limit) — but the word must
  // still never read as locked/absent.
  uint64_t word = TidWord::Make((1ULL << 32) + 3, 1);
  EXPECT_FALSE(TidWord::IsAbsent(word));
  EXPECT_FALSE(TidWord::IsLocked(word));
  EXPECT_EQ(3u, TidWord::Epoch(word));
}

TEST(TidSourceTest, CommitTidsCrossOldBoundary) {
  TidSource tids;
  uint64_t t1 = tids.NextCommitTid(0, kOldBoundary - 1);
  uint64_t t2 = tids.NextCommitTid(0, kOldBoundary + 5);
  uint64_t t3 = tids.NextCommitTid(0, kOldBoundary + 5);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_EQ(kOldBoundary + 5, TidWord::Epoch(t2));
  EXPECT_FALSE(TidWord::IsAbsent(t2));
  EXPECT_FALSE(TidWord::IsAbsent(t3));
}

TEST(TidSourceTest, WrappedEpochStillYieldsUniqueMonotoneTids) {
  // Past 2^32 epochs the TID epoch field wraps; commit TIDs must still be
  // unique and monotone (the original comparison against the unmasked
  // epoch reset every candidate to the same Make(epoch, 0)).
  TidSource tids;
  uint64_t wrapped = (1ULL << 32) + 7;
  uint64_t t1 = tids.NextCommitTid(0, wrapped);
  uint64_t t2 = tids.NextCommitTid(0, wrapped);
  uint64_t t3 = tids.NextCommitTid(0, wrapped);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_FALSE(TidWord::IsAbsent(t3));
  EXPECT_FALSE(TidWord::IsLocked(t3));
}

TEST(TidSourceTest, SequenceOverflowCarriesIntoEpoch) {
  TidSource tids;
  // A TID whose sequence field is saturated: +1 must carry into the epoch,
  // keeping TIDs monotone instead of corrupting status bits.
  uint64_t saturated = TidWord::Make(9, TidWord::kSeqMask);
  uint64_t next = tids.NextCommitTid(saturated, 9);
  EXPECT_GT(next, saturated);
  EXPECT_EQ(10u, TidWord::Epoch(next));
  EXPECT_FALSE(TidWord::IsAbsent(next));
}

Schema SavingsSchema() {
  return SchemaBuilder("savings")
      .AddColumn("cust_id", ValueType::kInt64)
      .AddColumn("balance", ValueType::kDouble)
      .SetKey({"cust_id"})
      .Build()
      .value();
}

// End to end: records committed in an epoch past the old 2^22 boundary must
// stay readable (the original bug made them read as deleted).
TEST(TidEpochWraparound, CommitsPastOldBoundaryStayReadable) {
  EpochManager epochs;
  Table table(SavingsSchema());
  TidSource tids;

  {
    SiloTxn txn(&epochs);
    ASSERT_TRUE(txn.Insert(&table, {Value(int64_t{1}), Value(100.0)}, 0).ok());
    ASSERT_TRUE(txn.Commit(&tids).ok());
  }

  epochs.AdvanceTo(kOldBoundary + 3);
  ASSERT_GE(epochs.current(), kOldBoundary + 3);

  // Update in the far-future epoch, then read it back.
  {
    SiloTxn txn(&epochs);
    Row row;
    ASSERT_TRUE(txn.GetInto(&table, {Value(int64_t{1})}, &row, 0).ok());
    row[1] = Value(row[1].AsDouble() + 1.0);
    ASSERT_TRUE(txn.Update(&table, {Value(int64_t{1})}, row, 0).ok());
    StatusOr<uint64_t> tid = txn.Commit(&tids);
    ASSERT_TRUE(tid.ok());
    EXPECT_EQ(kOldBoundary + 3, TidWord::Epoch(*tid));
    EXPECT_FALSE(TidWord::IsAbsent(*tid));
  }
  {
    SiloTxn txn(&epochs);
    Row row;
    ASSERT_TRUE(txn.GetInto(&table, {Value(int64_t{1})}, &row, 0).ok())
        << "record committed past the old epoch boundary must not read as "
           "deleted";
    EXPECT_DOUBLE_EQ(101.0, row[1].AsDouble());
    ASSERT_TRUE(txn.Commit(&tids).ok());
  }
}

TEST(TidEpochWraparound, AdvanceToNeverMovesBackward) {
  EpochManager epochs;
  epochs.AdvanceTo(100);
  EXPECT_EQ(100u, epochs.current());
  epochs.AdvanceTo(50);
  EXPECT_EQ(100u, epochs.current());
}

}  // namespace
}  // namespace reactdb

// Observability tests (src/obs/): sharded registry exactness under
// concurrent updates, tear-free snapshots, histogram shard-merge vs pooled
// equivalence, Prometheus/JSON exposition, per-transaction trace span
// capture and slow-transaction promotion on both runtimes, and the
// Database::Stats() surface end-to-end.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/reactdb.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace reactdb {
namespace {

// --- MetricsRegistry ---------------------------------------------------

// Single-writer executor shards plus the multi-writer shared shard must sum
// to the exact total: nothing lost, nothing double-counted.
TEST(MetricsRegistry, ConcurrentShardedCountersSumExactly) {
  constexpr int kShards = 4;
  constexpr uint64_t kPerThread = 200000;

  obs::MetricsRegistry reg;
  obs::MetricId ops = reg.Counter("test_ops_total", "ops");
  obs::MetricId depth = reg.Gauge("test_depth", "depth");
  reg.Freeze(kShards);

  std::vector<std::thread> threads;
  // One writer per executor shard (the single-writer discipline).
  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([&reg, ops, depth, s] {
      for (uint64_t i = 0; i < kPerThread; ++i) reg.Add(s, ops);
      reg.GaugeSet(s, depth, 3);
    });
  }
  // Two client threads racing on the shared shard (fetch_add path).
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&reg, ops] {
      for (uint64_t i = 0; i < kPerThread; ++i) reg.AddShared(ops);
    });
  }
  for (auto& t : threads) t.join();

  obs::StatsSnapshot snap = reg.Collect();
  EXPECT_DOUBLE_EQ(static_cast<double>((kShards + 2) * kPerThread),
                   snap.Value("test_ops_total"));
  // Sum-aggregated gauge: every executor shard contributed 3.
  EXPECT_DOUBLE_EQ(3.0 * kShards, snap.Value("test_depth"));
}

// Collect() while a writer is mid-flight: every observed value is a whole
// number of increments, never above the final total, and monotonically
// non-decreasing across successive snapshots (64-bit slots cannot tear).
TEST(MetricsRegistry, SnapshotDuringUpdatesNeverTears) {
  constexpr uint64_t kTotal = 400000;
  obs::MetricsRegistry reg;
  obs::MetricId ops = reg.Counter("test_ops_total", "ops");
  reg.Freeze(1);

  std::atomic<bool> done{false};
  std::thread writer([&reg, ops, &done] {
    for (uint64_t i = 0; i < kTotal; ++i) reg.Add(0, ops);
    done.store(true, std::memory_order_release);
  });

  double prev = 0;
  while (!done.load(std::memory_order_acquire)) {
    double v = reg.Collect().Value("test_ops_total");
    EXPECT_GE(v, prev) << "counters are monotonic";
    EXPECT_LE(v, static_cast<double>(kTotal));
    EXPECT_DOUBLE_EQ(v, static_cast<double>(static_cast<uint64_t>(v)))
        << "snapshot saw a torn / fractional value";
    prev = v;
  }
  writer.join();
  EXPECT_DOUBLE_EQ(static_cast<double>(kTotal),
                   reg.Collect().Value("test_ops_total"));
}

// A registry histogram sharded over N executors must collect to exactly the
// same buckets/count as one pooled Histogram fed every sample directly —
// both sides bin through Histogram::BucketIndex.
TEST(MetricsRegistry, ShardedHistogramMergeEqualsPooled) {
  constexpr int kShards = 3;
  obs::MetricsRegistry reg;
  obs::MetricId lat = reg.Histo("test_latency_us", "latency");
  reg.Freeze(kShards);

  Histogram pooled;
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    double sample = rng.NextDouble() * 10000;  // 0 .. 10 ms
    reg.Observe(static_cast<uint32_t>(i % kShards), lat, sample);
    pooled.Add(sample);
  }

  const obs::MetricSample* s = reg.Collect().Find("test_latency_us");
  ASSERT_NE(nullptr, s);
  ASSERT_EQ(obs::MetricType::kHistogram, s->type);
  EXPECT_EQ(pooled.count(), s->hist.count());
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    ASSERT_EQ(pooled.bucket_count(b), s->hist.bucket_count(b))
        << "bucket " << b;
  }
  // Sums agree to the fixed-point quantization (0.05 us per sample).
  EXPECT_NEAR(pooled.sum(), s->hist.sum(),
              static_cast<double>(pooled.count()) / Histogram::kUnitsPerUs);
}

TEST(MetricsRegistry, CounterFamilyMembersAreContiguousAndLabeled) {
  obs::MetricsRegistry reg;
  obs::MetricId aborted = reg.CounterFamily(
      "test_aborted_total", "by reason",
      {{{"reason", "cc"}}, {{"reason", "user"}}, {{"reason", "safety"}}});
  reg.Freeze(1);
  reg.Add(0, obs::MetricId::Offset(aborted, 0), 5);
  reg.Add(0, obs::MetricId::Offset(aborted, 1), 7);
  reg.Add(0, obs::MetricId::Offset(aborted, 2), 11);

  obs::StatsSnapshot snap = reg.Collect();
  EXPECT_DOUBLE_EQ(5, snap.Value("test_aborted_total", {{"reason", "cc"}}));
  EXPECT_DOUBLE_EQ(7, snap.Value("test_aborted_total", {{"reason", "user"}}));
  EXPECT_DOUBLE_EQ(11,
                   snap.Value("test_aborted_total", {{"reason", "safety"}}));
}

TEST(MetricsRegistry, MaxAggregatedGaugeTakesShardMax) {
  obs::MetricsRegistry reg;
  obs::MetricId hw = reg.Gauge("test_high_water", "hw", {},
                               obs::Aggregation::kMax);
  reg.Freeze(3);
  reg.GaugeMax(0, hw, 100);
  reg.GaugeMax(1, hw, 300);
  reg.GaugeMax(2, hw, 200);
  reg.GaugeMax(1, hw, 50);  // below the held max: no effect
  EXPECT_DOUBLE_EQ(300, reg.Collect().Value("test_high_water"));
}

// Client layers may touch the shared forms against a runtime that never
// bootstrapped (e.g. a Session on a failed Open): must be a safe no-op.
TEST(MetricsRegistry, SharedFormsAreNoOpsBeforeFreeze) {
  obs::MetricsRegistry reg;
  obs::MetricId id = reg.Counter("test_ops_total", "ops");
  reg.AddShared(id);
  reg.GaugeAddShared(id, 1);
  reg.GaugeSetShared(id, 9);
  reg.ObserveShared(id, 1.0);
  EXPECT_FALSE(reg.frozen());
}

TEST(ProcOutcomeTable, BumpAndReadBack) {
  obs::ProcOutcomeTable table;
  table.Init({2, 3});  // reactor 0: 2 procs, reactor 1: 3 procs
  table.Bump(ReactorId{0}, ProcId{1}, true);
  table.Bump(ReactorId{0}, ProcId{1}, true);
  table.Bump(ReactorId{1}, ProcId{2}, false);
  EXPECT_EQ(2u, table.committed(ReactorId{0}, ProcId{1}));
  EXPECT_EQ(0u, table.aborted(ReactorId{0}, ProcId{1}));
  EXPECT_EQ(1u, table.aborted(ReactorId{1}, ProcId{2}));
  EXPECT_EQ(2u, table.num_reactors());
  EXPECT_EQ(3u, table.num_procs(1));
}

// --- Exposition formats ------------------------------------------------

TEST(StatsSnapshot, PrometheusExposition) {
  obs::MetricsRegistry reg;
  obs::MetricId ops = reg.Counter("test_ops_total", "Operations", {});
  obs::MetricId lat = reg.Histo("test_latency_us", "Latency");
  reg.Freeze(1);
  reg.Add(0, ops, 42);
  reg.Observe(0, lat, 1.0);
  reg.Observe(0, lat, 2.0);

  std::string text = reg.Collect().ToPrometheus();
  EXPECT_NE(std::string::npos, text.find("# HELP test_ops_total Operations"));
  EXPECT_NE(std::string::npos, text.find("# TYPE test_ops_total counter"));
  EXPECT_NE(std::string::npos, text.find("test_ops_total 42"));
  EXPECT_NE(std::string::npos, text.find("# TYPE test_latency_us histogram"));
  // Cumulative buckets end at +Inf == _count.
  EXPECT_NE(std::string::npos,
            text.find("test_latency_us_bucket{le=\"+Inf\"} 2"));
  EXPECT_NE(std::string::npos, text.find("test_latency_us_count 2"));
  EXPECT_NE(std::string::npos, text.find("test_latency_us_sum"));
}

// Hostile label values and help text: backslashes, quotes, and newlines
// must escape per the Prometheus text exposition spec — label values
// escape \, ", and newline; HELP text escapes only \ and newline.
TEST(StatsSnapshot, PrometheusEscapesHostileLabelsAndHelp) {
  obs::MetricsRegistry reg;
  obs::MetricId ops =
      reg.Counter("test_hostile_total", "multi\nline \\ help",
                  {{"path", "C:\\tmp\n\"quoted\""}});
  reg.Freeze(1);
  reg.Add(0, ops, 1);

  std::string text = reg.Collect().ToPrometheus();
  EXPECT_NE(std::string::npos,
            text.find("path=\"C:\\\\tmp\\n\\\"quoted\\\"\""))
      << "label value escapes backslash, newline, and quote:\n" << text;
  EXPECT_NE(std::string::npos,
            text.find("# HELP test_hostile_total multi\\nline \\\\ help"))
      << "help escapes backslash and newline (quotes stay literal):\n"
      << text;
  // No raw newline may survive inside any exposition line.
  EXPECT_EQ(std::string::npos, text.find("multi\nline"));
  EXPECT_EQ(std::string::npos, text.find("tmp\n\""));
}

TEST(StatsSnapshot, JsonContainsSeries) {
  obs::MetricsRegistry reg;
  obs::MetricId ops =
      reg.Counter("test_ops_total", "Operations", {{"kind", "a\"b"}});
  reg.Freeze(1);
  reg.Add(0, ops, 3);
  std::string json = reg.Collect().ToJson();
  EXPECT_NE(std::string::npos, json.find("\"test_ops_total\""));
  EXPECT_NE(std::string::npos, json.find("a\\\"b")) << "labels must escape";
}

// --- TraceStore (unit) -------------------------------------------------

TEST(TraceStore, SpansKeepRecordOrderAndPromoteSlow) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.slow_threshold_us = 100;
  obs::TraceStore store(opts, /*num_executors=*/2);

  // Fast trace: lands in the recent ring only.
  obs::TxnTrace* fast = store.Begin(1, ReactorId{0}, ProcId{0});
  ASSERT_NE(nullptr, fast);
  fast->begin_us = 10;
  fast->Record(obs::SpanKind::kSubmit, 10);
  fast->Record(obs::SpanKind::kDispatch, 12);
  fast->Record(obs::SpanKind::kFinalize, 20);
  store.Finish(fast, /*executor=*/0, true, 1, 20);

  // Slow trace: promoted into the retained ring.
  obs::TxnTrace* slow = store.Begin(2, ReactorId{0}, ProcId{0});
  ASSERT_NE(nullptr, slow);
  slow->begin_us = 0;
  slow->Record(obs::SpanKind::kSubmit, 0);
  slow->Record(obs::SpanKind::kValidate, 180);
  slow->Record(obs::SpanKind::kInstall, 190);
  slow->Record(obs::SpanKind::kFinalize, 200);
  store.Finish(slow, /*executor=*/1, true, 2, 200);

  EXPECT_EQ(1u, store.recent_count(0));
  EXPECT_EQ(1u, store.recent_count(1));
  EXPECT_EQ(1u, store.promoted_total());
  EXPECT_EQ(1u, store.retained_count());

  // Durable stamp lands only on retained traces of sealed epochs.
  store.OnDurableEpoch(/*durable_epoch=*/2, /*now_us=*/500);
  std::string json = store.DumpJson();
  size_t submit = json.find("\"submit\"");
  size_t validate = json.find("\"validate\"");
  size_t install = json.find("\"install\"");
  size_t finalize = json.find("\"finalize\"");
  size_t durable = json.find("\"durable\"");
  ASSERT_NE(std::string::npos, submit);
  ASSERT_NE(std::string::npos, durable);
  EXPECT_LT(submit, validate);
  EXPECT_LT(validate, install);
  EXPECT_LT(install, finalize);
  EXPECT_LT(finalize, durable) << "kDurable appends after finalize";
}

TEST(TraceStore, PoolExhaustionLeavesTxnsUntraced) {
  obs::TraceOptions opts;
  opts.enabled = true;
  opts.max_live = 1;
  obs::TraceStore store(opts, 1);
  obs::TxnTrace* a = store.Begin(1, ReactorId{0}, ProcId{0});
  ASSERT_NE(nullptr, a);
  EXPECT_EQ(nullptr, store.Begin(2, ReactorId{0}, ProcId{0}))
      << "pool exhausted: transaction goes untraced, not blocked";
  store.Finish(a, 0, true, 1, 1);
  EXPECT_NE(nullptr, store.Begin(3, ReactorId{0}, ProcId{0}))
      << "Finish returns the slot to the pool";
}

TEST(TraceStore, DisabledStoreIsInert) {
  obs::TraceStore store(obs::TraceOptions{}, 1);
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(nullptr, store.Begin(1, ReactorId{0}, ProcId{0}));
  EXPECT_EQ(0u, store.retained_count());
}

// --- End-to-end: Database + both runtimes ------------------------------

Proc BumpProc(TxnContext& ctx, Row args) {
  int64_t by = args.empty() ? 1 : args[0].AsInt64();
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("counter", {Value(int64_t{0})},
                 {Value(int64_t{0}), Value(row[1].AsInt64() + by)}));
  co_return Value(row[1].AsInt64() + by);
}

Proc RejectProc(TxnContext&, Row) {
  co_return Status::UserAbort("declined");
}

// transfer-style: a local read plus one asynchronous cross-reactor call,
// so the root touches two containers and traces carry call_send/call_done.
Proc PokeProc(TxnContext& ctx, Row args) {
  Future f = ctx.CallOn(args[0].AsString(), "bump", {Value(int64_t{1})});
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("counter", {Value(int64_t{0})}));
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return Value(row[1].AsInt64() + r.value().AsInt64());
}

std::unique_ptr<ReactorDatabaseDef> ObsDef(int n) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& t = def->DefineType("Counter");
  t.AddSchema(SchemaBuilder("counter")
                  .AddColumn("k", ValueType::kInt64)
                  .AddColumn("v", ValueType::kInt64)
                  .SetKey({"k"})
                  .Build()
                  .value());
  t.AddProcedure("bump", &BumpProc);
  t.AddProcedure("reject", &RejectProc);
  t.AddProcedure("poke", &PokeProc);
  for (int i = 0; i < n; ++i) {
    REACTDB_CHECK_OK(def->DeclareReactor("c" + std::to_string(i), "Counter"));
  }
  return def;
}

void LoadObs(client::Database* db, int n) {
  REACTDB_CHECK_OK(db->RunDirect([db, n](SiloTxn& txn) -> Status {
    for (int i = 0; i < n; ++i) {
      std::string name = "c" + std::to_string(i);
      REACTDB_ASSIGN_OR_RETURN(Table * t, db->FindTable(name, "counter"));
      REACTDB_RETURN_IF_ERROR(
          txn.Insert(t, {Value(int64_t{0}), Value(int64_t{0})},
                     db->FindReactor(name)->container_id()));
    }
    return Status::OK();
  }));
}

TEST(DatabaseStats, CountsOutcomesByReasonAndProcedure) {
  auto def = ObsDef(2);
  client::Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  LoadObs(&db, 2);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  }
  ASSERT_TRUE(db.Execute("c0", "poke", {Value("c1")}).ok());
  EXPECT_FALSE(db.Execute("c1", "reject", {}).ok());

  obs::StatsSnapshot snap = db.Stats();
  EXPECT_DOUBLE_EQ(6, snap.Value("reactdb_txn_committed_total"));
  EXPECT_DOUBLE_EQ(
      1, snap.Value("reactdb_txn_aborted_total", {{"reason", "user"}}));
  EXPECT_DOUBLE_EQ(
      0, snap.Value("reactdb_txn_aborted_total", {{"reason", "cc"}}));
  EXPECT_DOUBLE_EQ(1, snap.Value("reactdb_txn_multi_container_total"))
      << "poke touches both containers";
  EXPECT_DOUBLE_EQ(5, snap.Value("reactdb_proc_committed_total",
                                 {{"reactor", "c0"}, {"proc", "bump"}}));
  EXPECT_DOUBLE_EQ(1, snap.Value("reactdb_proc_aborted_total",
                                 {{"reactor", "c1"}, {"proc", "reject"}}));
  // The latency histogram saw every finalized root.
  const obs::MetricSample* lat = snap.Find("reactdb_txn_latency_us");
  ASSERT_NE(nullptr, lat);
  EXPECT_EQ(7u, lat->hist.count());
  // Transport moved submit messages; sessions submitted through the window.
  EXPECT_GE(snap.Value("reactdb_transport_sent_total", {{"kind", "SUBMIT"}}),
            7.0);
  EXPECT_DOUBLE_EQ(7, snap.Value("reactdb_session_submitted_total"));
  EXPECT_DOUBLE_EQ(0, snap.Value("reactdb_txn_outstanding"));

  std::string prom = snap.ToPrometheus();
  EXPECT_NE(std::string::npos, prom.find("reactdb_txn_committed_total 6"));
  db.Shutdown();
}

// Tracing on the simulator: spans carry VIRTUAL timestamps, the lifecycle
// order is submit -> dispatch -> ... -> finalize, and the whole dump is
// deterministic — two identical runs produce byte-identical JSON.
TEST(Tracing, SimSpansAreOrderedAndDeterministic) {
  auto run = [](std::string* dump) {
    auto def = ObsDef(2);
    client::Database::Options options = client::Database::Sim();
    options.trace.enabled = true;
    options.trace.slow_threshold_us = 0;  // retain everything
    client::Database db;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(2), options).ok());
    LoadObs(&db, 2);
    ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
    ASSERT_TRUE(db.Execute("c0", "poke", {Value("c1")}).ok());
    EXPECT_EQ(2u, db.tracer()->promoted_total());
    *dump = db.DumpTraces();
    db.Shutdown();
  };
  std::string first, second;
  run(&first);
  run(&second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "virtual-time traces must be deterministic";

  // The cross-reactor poke records the sub-transaction round trip.
  EXPECT_NE(std::string::npos, first.find("\"call_send\""));
  EXPECT_NE(std::string::npos, first.find("\"call_done\""));
  // Lifecycle order within the first retained trace.
  size_t submit = first.find("\"submit\"");
  size_t dispatch = first.find("\"dispatch\"");
  size_t validate = first.find("\"validate\"");
  size_t install = first.find("\"install\"");
  size_t finalize = first.find("\"finalize\"");
  ASSERT_NE(std::string::npos, finalize);
  EXPECT_LT(submit, dispatch);
  EXPECT_LT(dispatch, validate);
  EXPECT_LT(validate, install);
  EXPECT_LT(install, finalize);
}

TEST(Tracing, ThreadRuntimeRecordsAndPromotesByThreshold) {
  auto def = ObsDef(1);

  // Threshold 0: every completed root is promoted into the retained ring.
  {
    client::Database::Options options;
    options.trace.enabled = true;
    options.trace.slow_threshold_us = 0;
    client::Database db;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(1), options).ok());
    LoadObs(&db, 1);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
    }
    EXPECT_EQ(4u, db.tracer()->promoted_total());
    EXPECT_EQ(4u, db.tracer()->retained_count());
    EXPECT_GE(db.tracer()->recent_count(0), 1u);
    std::string dump = db.DumpTraces();
    EXPECT_NE(std::string::npos, dump.find("\"submit\""));
    EXPECT_NE(std::string::npos, dump.find("\"committed\":true"));
    db.Shutdown();
  }

  // Absurdly high threshold: traces land in the recent rings but nothing
  // is promoted.
  {
    client::Database::Options options;
    options.trace.enabled = true;
    options.trace.slow_threshold_us = 1e12;
    client::Database db;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(1), options).ok());
    LoadObs(&db, 1);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
    }
    EXPECT_EQ(0u, db.tracer()->promoted_total());
    EXPECT_GE(db.tracer()->recent_count(0), 1u);
    db.Shutdown();
  }
}

// Tracing off (the default): zero traces, and the stats surface still works.
TEST(Tracing, DisabledByDefault) {
  auto def = ObsDef(1);
  client::Database db;
  ASSERT_TRUE(db.Open(def.get(), DeploymentConfig::SharedNothing(1)).ok());
  LoadObs(&db, 1);
  ASSERT_TRUE(db.Execute("c0", "bump", {Value(int64_t{1})}).ok());
  EXPECT_FALSE(db.tracer()->enabled());
  EXPECT_EQ(0u, db.tracer()->retained_count());
  EXPECT_DOUBLE_EQ(1, db.Stats().Value("reactdb_txn_committed_total"));
  db.Shutdown();
}

}  // namespace
}  // namespace reactdb

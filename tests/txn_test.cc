// OCC transaction tests: read-your-writes, validation conflicts, phantom
// protection, secondary index maintenance, delete/insert semantics, epoch
// reclamation, and multi-threaded conflict stress.
#include <gtest/gtest.h>

#include <thread>

#include "src/storage/table.h"
#include "src/txn/silo_txn.h"
#include "src/util/rng.h"

namespace reactdb {
namespace {

Schema AccountSchema() {
  return SchemaBuilder("account")
      .AddColumn("id", ValueType::kInt64)
      .AddColumn("owner", ValueType::kString)
      .AddColumn("balance", ValueType::kDouble)
      .SetKey({"id"})
      .AddIndex("by_owner", {"owner"})
      .Build()
      .value();
}

class SiloTxnTest : public ::testing::Test {
 protected:
  SiloTxnTest() : table_(AccountSchema()) {}

  Status Put(int64_t id, const std::string& owner, double balance) {
    SiloTxn txn(&epochs_);
    REACTDB_RETURN_IF_ERROR(
        txn.Insert(&table_, {Value(id), Value(owner), Value(balance)}, 0));
    return txn.Commit(&tids_).status();
  }

  StatusOr<Row> Read(int64_t id) {
    SiloTxn txn(&epochs_);
    auto row = txn.Get(&table_, {Value(id)}, 0);
    (void)txn.Commit(&tids_);
    return row;
  }

  EpochManager epochs_;
  TidSource tids_;
  Table table_;
};

TEST_F(SiloTxnTest, InsertThenReadBack) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  StatusOr<Row> row = Read(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ("alice", (*row)[1].AsString());
  EXPECT_DOUBLE_EQ(100, (*row)[2].AsNumeric());
}

TEST_F(SiloTxnTest, GetMissingIsNotFound) {
  EXPECT_TRUE(Read(99).status().IsNotFound());
}

TEST_F(SiloTxnTest, ReadYourOwnWrites) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn txn(&epochs_);
  ASSERT_TRUE(
      txn.Update(&table_, {Value(int64_t{1})},
                 {Value(int64_t{1}), Value("alice"), Value(250.0)}, 0)
          .ok());
  StatusOr<Row> row = txn.Get(&table_, {Value(int64_t{1})}, 0);
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ(250, (*row)[2].AsNumeric());  // pending value visible
  // Uncommitted writes invisible to others.
  {
    SiloTxn other(&epochs_);
    StatusOr<Row> other_row = other.Get(&table_, {Value(int64_t{1})}, 0);
    EXPECT_DOUBLE_EQ(100, (*other_row)[2].AsNumeric());
    other.Abort();
  }
  ASSERT_TRUE(txn.Commit(&tids_).ok());
  EXPECT_DOUBLE_EQ(250, (*Read(1))[2].AsNumeric());
}

TEST_F(SiloTxnTest, AbortRollsBackEverything) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  {
    SiloTxn txn(&epochs_);
    ASSERT_TRUE(
        txn.Update(&table_, {Value(int64_t{1})},
                   {Value(int64_t{1}), Value("alice"), Value(0.0)}, 0)
            .ok());
    ASSERT_TRUE(
        txn.Insert(&table_, {Value(int64_t{2}), Value("bob"), Value(5.0)}, 0)
            .ok());
    txn.Abort();
  }
  EXPECT_DOUBLE_EQ(100, (*Read(1))[2].AsNumeric());
  EXPECT_TRUE(Read(2).status().IsNotFound());
}

TEST_F(SiloTxnTest, DuplicateInsertRejected) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn txn(&epochs_);
  EXPECT_TRUE(
      txn.Insert(&table_, {Value(int64_t{1}), Value("dup"), Value(0.0)}, 0)
          .IsAlreadyExists());
  txn.Abort();
}

TEST_F(SiloTxnTest, DeleteThenReinsert) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  {
    SiloTxn txn(&epochs_);
    ASSERT_TRUE(txn.Delete(&table_, {Value(int64_t{1})}, 0).ok());
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  EXPECT_TRUE(Read(1).status().IsNotFound());
  // Reinsert over the tombstone.
  ASSERT_TRUE(Put(1, "anna", 70).ok());
  EXPECT_EQ("anna", (*Read(1))[1].AsString());
}

TEST_F(SiloTxnTest, DeleteAndInsertInOneTxnReplaces) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn txn(&epochs_);
  ASSERT_TRUE(txn.Delete(&table_, {Value(int64_t{1})}, 0).ok());
  ASSERT_TRUE(
      txn.Insert(&table_, {Value(int64_t{1}), Value("alicia"), Value(1.0)}, 0)
          .ok());
  ASSERT_TRUE(txn.Commit(&tids_).ok());
  EXPECT_EQ("alicia", (*Read(1))[1].AsString());
}

TEST_F(SiloTxnTest, WriteWriteConflictAborts) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn t1(&epochs_);
  SiloTxn t2(&epochs_);
  ASSERT_TRUE(t1.Get(&table_, {Value(int64_t{1})}, 0).ok());
  ASSERT_TRUE(t2.Get(&table_, {Value(int64_t{1})}, 0).ok());
  ASSERT_TRUE(t1.Update(&table_, {Value(int64_t{1})},
                        {Value(int64_t{1}), Value("alice"), Value(1.0)}, 0)
                  .ok());
  ASSERT_TRUE(t2.Update(&table_, {Value(int64_t{1})},
                        {Value(int64_t{1}), Value("alice"), Value(2.0)}, 0)
                  .ok());
  ASSERT_TRUE(t1.Commit(&tids_).ok());
  // t2 read a version t1 replaced: validation must fail.
  EXPECT_TRUE(t2.Commit(&tids_).status().IsAborted());
  EXPECT_DOUBLE_EQ(1.0, (*Read(1))[2].AsNumeric());
}

TEST_F(SiloTxnTest, ReadOnlyConflictAborts) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn reader(&epochs_);
  ASSERT_TRUE(reader.Get(&table_, {Value(int64_t{1})}, 0).ok());
  ASSERT_TRUE(Put(2, "bob", 1.0).ok());  // unrelated insert: no conflict
  {
    SiloTxn writer(&epochs_);
    ASSERT_TRUE(writer.Update(&table_, {Value(int64_t{1})},
                              {Value(int64_t{1}), Value("alice"), Value(0.0)},
                              0)
                    .ok());
    ASSERT_TRUE(writer.Commit(&tids_).ok());
  }
  EXPECT_TRUE(reader.Commit(&tids_).status().IsAborted());
}

TEST_F(SiloTxnTest, PhantomProtectionOnMiss) {
  SiloTxn txn(&epochs_);
  EXPECT_TRUE(txn.Get(&table_, {Value(int64_t{5})}, 0).status().IsNotFound());
  // Another transaction inserts the key the first one observed missing.
  ASSERT_TRUE(Put(5, "ghost", 1.0).ok());
  EXPECT_TRUE(txn.Commit(&tids_).status().IsAborted());
}

TEST_F(SiloTxnTest, PhantomProtectionOnScan) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  ASSERT_TRUE(Put(3, "carol", 100).ok());
  SiloTxn scanner(&epochs_);
  int64_t count = 0;
  ASSERT_TRUE(scanner
                  .Scan(&table_, {Value(int64_t{0})}, {Value(int64_t{10})}, -1,
                        [&count](const Row&) {
                          ++count;
                          return true;
                        },
                        0)
                  .ok());
  EXPECT_EQ(2, count);
  ASSERT_TRUE(Put(2, "bob", 100).ok());  // phantom in the scanned range
  EXPECT_TRUE(scanner.Commit(&tids_).status().IsAborted());
}

TEST_F(SiloTxnTest, OwnInsertDoesNotFalselyAbortScan) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn txn(&epochs_);
  int64_t count = 0;
  ASSERT_TRUE(txn.Scan(&table_, {Value(int64_t{0})}, {Value(int64_t{10})}, -1,
                       [&count](const Row&) {
                         ++count;
                         return true;
                       },
                       0)
                  .ok());
  EXPECT_EQ(1, count);
  // Inserting into the scanned range within the same transaction is fine.
  ASSERT_TRUE(
      txn.Insert(&table_, {Value(int64_t{2}), Value("bob"), Value(1.0)}, 0)
          .ok());
  EXPECT_TRUE(txn.Commit(&tids_).ok());
}

TEST_F(SiloTxnTest, ScanSeesOwnPendingWrites) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  SiloTxn txn(&epochs_);
  ASSERT_TRUE(
      txn.Insert(&table_, {Value(int64_t{2}), Value("bob"), Value(5.0)}, 0)
          .ok());
  ASSERT_TRUE(txn.Delete(&table_, {Value(int64_t{1})}, 0).ok());
  std::vector<std::string> owners;
  ASSERT_TRUE(txn.Scan(&table_, {}, {}, -1,
                       [&owners](const Row& row) {
                         owners.push_back(row[1].AsString());
                         return true;
                       },
                       0)
                  .ok());
  EXPECT_EQ((std::vector<std::string>{"bob"}), owners);
  txn.Abort();
}

TEST_F(SiloTxnTest, SecondaryIndexFollowsUpdates) {
  ASSERT_TRUE(Put(1, "alice", 100).ok());
  ASSERT_TRUE(Put(2, "alice", 50).ok());
  auto by_owner = [this](const std::string& owner) {
    SiloTxn txn(&epochs_);
    std::vector<int64_t> ids;
    EXPECT_TRUE(txn.ScanSecondary(&table_, 0, {Value(owner)}, -1,
                                  [&ids](const Row& row) {
                                    ids.push_back(row[0].AsInt64());
                                    return true;
                                  },
                                  0)
                    .ok());
    txn.Abort();
    return ids;
  };
  EXPECT_EQ((std::vector<int64_t>{1, 2}), by_owner("alice"));
  // Rename account 1: entry must move atomically.
  {
    SiloTxn txn(&epochs_);
    ASSERT_TRUE(txn.Update(&table_, {Value(int64_t{1})},
                           {Value(int64_t{1}), Value("anna"), Value(100.0)},
                           0)
                    .ok());
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  EXPECT_EQ((std::vector<int64_t>{2}), by_owner("alice"));
  EXPECT_EQ((std::vector<int64_t>{1}), by_owner("anna"));
  // Delete removes the entry.
  {
    SiloTxn txn(&epochs_);
    ASSERT_TRUE(txn.Delete(&table_, {Value(int64_t{2})}, 0).ok());
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  EXPECT_TRUE(by_owner("alice").empty());
}

TEST_F(SiloTxnTest, ReverseSecondaryScan) {
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(Put(i, "zoe", i * 1.0).ok());
  }
  SiloTxn txn(&epochs_);
  std::vector<int64_t> ids;
  ASSERT_TRUE(txn.ReverseScanSecondary(&table_, 0, {Value("zoe")}, 2,
                                       [&ids](const Row& row) {
                                         ids.push_back(row[0].AsInt64());
                                         return true;
                                       },
                                       0)
                  .ok());
  EXPECT_EQ((std::vector<int64_t>{5, 4}), ids);
  txn.Abort();
}

TEST_F(SiloTxnTest, ContainersTracked) {
  Table other(AccountSchema());
  SiloTxn txn(&epochs_);
  ASSERT_TRUE(
      txn.Insert(&table_, {Value(int64_t{1}), Value("a"), Value(0.0)}, 0)
          .ok());
  ASSERT_TRUE(
      txn.Insert(&other, {Value(int64_t{1}), Value("b"), Value(0.0)}, 3).ok());
  const ContainerSet& touched = txn.containers_touched();
  EXPECT_EQ((std::set<uint32_t>{0, 3}),
            std::set<uint32_t>(touched.begin(), touched.end()));
  EXPECT_TRUE(touched.contains(0));
  EXPECT_TRUE(touched.contains(3));
  EXPECT_FALSE(touched.contains(1));
  ASSERT_TRUE(txn.Commit(&tids_).ok());
}

TEST_F(SiloTxnTest, ChunkedScanCrossesChunkBoundaries) {
  // More rows than the internal scan chunk (1024).
  for (int64_t i = 0; i < 2600; ++i) {
    ASSERT_TRUE(Put(i, "bulk", 1.0).ok());
  }
  SiloTxn txn(&epochs_);
  int64_t count = 0;
  int64_t last = -1;
  ASSERT_TRUE(txn.Scan(&table_, {}, {}, -1,
                       [&](const Row& row) {
                         EXPECT_EQ(last + 1, row[0].AsInt64());
                         last = row[0].AsInt64();
                         ++count;
                         return true;
                       },
                       0)
                  .ok());
  EXPECT_EQ(2600, count);
  // Reverse with a limit stops early.
  count = 0;
  ASSERT_TRUE(txn.ReverseScan(&table_, {}, {}, 1500,
                              [&](const Row&) {
                                ++count;
                                return true;
                              },
                              0)
                  .ok());
  EXPECT_EQ(1500, count);
  ASSERT_TRUE(txn.Commit(&tids_).ok());
}

TEST(EpochManager, ReclaimsOnlyWhenSafe) {
  EpochManager epochs;
  size_t slot = epochs.RegisterSlot();
  epochs.EnterEpoch(slot);
  epochs.Retire(new Row{Value(int64_t{1})});
  EXPECT_EQ(1u, epochs.retired_count());
  // Executor pinned: several advances must not free.
  epochs.Advance();
  epochs.Advance();
  EXPECT_EQ(1u, epochs.retired_count());
  epochs.LeaveEpoch(slot);
  epochs.Advance();
  EXPECT_EQ(0u, epochs.retired_count());
}

TEST(SiloTxnConcurrency, CounterIncrementsNeverLost) {
  EpochManager epochs;
  Table table(AccountSchema());
  TidSource loader_tids;
  {
    SiloTxn loader(&epochs);
    ASSERT_TRUE(
        loader.Insert(&table, {Value(int64_t{1}), Value("c"), Value(0.0)}, 0)
            .ok());
    ASSERT_TRUE(loader.Commit(&loader_tids).ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIncrementsEach = 200;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&epochs, &table, &committed] {
      TidSource tids;
      for (int i = 0; i < kIncrementsEach; ++i) {
        while (true) {
          SiloTxn txn(&epochs);
          StatusOr<Row> row = txn.Get(&table, {Value(int64_t{1})}, 0);
          if (!row.ok()) continue;
          Row updated = *row;
          updated[2] = Value(updated[2].AsNumeric() + 1);
          if (!txn.Update(&table, {Value(int64_t{1})}, std::move(updated), 0)
                   .ok()) {
            continue;
          }
          if (txn.Commit(&tids).ok()) {
            committed++;
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kThreads * kIncrementsEach, committed.load());
  SiloTxn check(&epochs);
  StatusOr<Row> row = check.Get(&table, {Value(int64_t{1})}, 0);
  EXPECT_DOUBLE_EQ(kThreads * kIncrementsEach, (*row)[2].AsNumeric());
  check.Abort();
}

// Serializability property: concurrent randomized transfers among accounts
// conserve the total, and the final state equals replaying committed
// transfers in commit-TID order.
TEST(SiloTxnConcurrency, TransfersSerializeByCommitTid) {
  EpochManager epochs;
  Table table(AccountSchema());
  constexpr int kAccounts = 8;
  {
    TidSource tids;
    SiloTxn loader(&epochs);
    for (int64_t i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(
          loader.Insert(&table, {Value(i), Value("x"), Value(1000.0)}, 0)
              .ok());
    }
    ASSERT_TRUE(loader.Commit(&tids).ok());
  }
  struct CommittedTransfer {
    uint64_t tid;
    int64_t from, to;
    double amount;
  };
  std::mutex log_mu;
  std::vector<CommittedTransfer> log;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + t);
      TidSource tids;
      for (int i = 0; i < 150; ++i) {
        int64_t from = rng.NextInt(0, kAccounts - 1);
        int64_t to = rng.NextIntExcluding(0, kAccounts - 1, from);
        double amount = static_cast<double>(rng.NextInt(1, 50));
        SiloTxn txn(&epochs);
        StatusOr<Row> from_row = txn.Get(&table, {Value(from)}, 0);
        StatusOr<Row> to_row = txn.Get(&table, {Value(to)}, 0);
        if (!from_row.ok() || !to_row.ok()) continue;
        Row f = *from_row;
        Row g = *to_row;
        f[2] = Value(f[2].AsNumeric() - amount);
        g[2] = Value(g[2].AsNumeric() + amount);
        if (!txn.Update(&table, {Value(from)}, std::move(f), 0).ok()) continue;
        if (!txn.Update(&table, {Value(to)}, std::move(g), 0).ok()) continue;
        StatusOr<uint64_t> tid = txn.Commit(&tids);
        if (tid.ok()) {
          std::lock_guard<std::mutex> lock(log_mu);
          log.push_back({*tid, from, to, amount});
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(log.empty());
  // Replay committed transfers in TID order; final balances must match.
  std::sort(log.begin(), log.end(),
            [](const CommittedTransfer& a, const CommittedTransfer& b) {
              return a.tid < b.tid;
            });
  std::vector<double> balances(kAccounts, 1000.0);
  for (const CommittedTransfer& x : log) {
    balances[x.from] -= x.amount;
    balances[x.to] += x.amount;
  }
  TidSource tids;
  SiloTxn check(&epochs);
  double total = 0;
  for (int64_t i = 0; i < kAccounts; ++i) {
    StatusOr<Row> row = check.Get(&table, {Value(i)}, 0);
    ASSERT_TRUE(row.ok());
    EXPECT_DOUBLE_EQ(balances[i], (*row)[2].AsNumeric()) << "account " << i;
    total += (*row)[2].AsNumeric();
  }
  EXPECT_DOUBLE_EQ(kAccounts * 1000.0, total);
  check.Abort();
}

// --- Multi-container commit interleavings against the flat-set SiloTxn ------
//
// These re-prove the validation semantics the arena/flat-set rewrite must
// preserve: the write-set lock order is global across containers (sorted
// once at commit by (container, record)), read-set validation catches a
// foreign commit between read and validate, and node-set version checks
// catch cross-container phantoms.

Schema BalanceSchema(const std::string& name) {
  return SchemaBuilder(name)
      .AddColumn("id", ValueType::kInt64)
      .AddColumn("balance", ValueType::kDouble)
      .SetKey({"id"})
      .Build()
      .value();
}

class MultiContainerTest : public ::testing::Test {
 protected:
  MultiContainerTest()
      : table0_(BalanceSchema("c0_balances")),
        table1_(BalanceSchema("c1_balances")) {
    SiloTxn loader(&epochs_);
    EXPECT_TRUE(
        loader.Insert(&table0_, {Value(int64_t{1}), Value(1000.0)}, 0).ok());
    EXPECT_TRUE(
        loader.Insert(&table1_, {Value(int64_t{1}), Value(1000.0)}, 1).ok());
    EXPECT_TRUE(loader.Commit(&loader_tids_).ok());
  }

  double BalanceOf(Table* t, uint32_t container) {
    SiloTxn txn(&epochs_);
    StatusOr<Row> row = txn.Get(t, {Value(int64_t{1})}, container);
    EXPECT_TRUE(row.ok());
    (void)txn.Commit(&loader_tids_);
    return row.ok() ? (*row)[1].AsNumeric() : 0.0;
  }

  EpochManager epochs_;
  TidSource loader_tids_;
  Table table0_;
  Table table1_;
};

// Two threads move money between the containers in OPPOSITE access order
// (t0->t1 vs t1->t0). The global (container, record-pointer) lock order
// makes the locking phase deadlock-free regardless of buffering order, and
// OCC validation serializes the interleavings: the cross-container total is
// conserved exactly.
TEST_F(MultiContainerTest, OppositeOrderTransfersConserveTotal) {
  constexpr int kTransfersPerThread = 300;
  auto worker = [this](bool forward, TidSource* tids, int* committed) {
    Row key = {Value(int64_t{1})};
    for (int i = 0; i < kTransfersPerThread;) {
      SiloTxn txn(&epochs_);
      Table* first = forward ? &table0_ : &table1_;
      Table* second = forward ? &table1_ : &table0_;
      uint32_t c_first = forward ? 0 : 1;
      uint32_t c_second = forward ? 1 : 0;
      StatusOr<Row> a = txn.Get(first, key, c_first);
      StatusOr<Row> b = txn.Get(second, key, c_second);
      if (!a.ok() || !b.ok()) {
        txn.Abort();
        continue;
      }
      Row na = *a;
      na[1] = Value(na[1].AsNumeric() - 1.0);
      Row nb = *b;
      nb[1] = Value(nb[1].AsNumeric() + 1.0);
      if (!txn.Update(first, key, na, c_first).ok() ||
          !txn.Update(second, key, nb, c_second).ok()) {
        txn.Abort();
        continue;
      }
      EXPECT_EQ(2u, txn.containers_touched().size());
      if (txn.Commit(tids).ok()) {
        ++i;
        ++*committed;
      }
    }
  };
  TidSource tids_a, tids_b;
  int committed_a = 0, committed_b = 0;
  std::thread ta(worker, true, &tids_a, &committed_a);
  std::thread tb(worker, false, &tids_b, &committed_b);
  ta.join();
  tb.join();
  EXPECT_EQ(kTransfersPerThread, committed_a);
  EXPECT_EQ(kTransfersPerThread, committed_b);
  // Each thread moved kTransfersPerThread units in opposite directions.
  EXPECT_DOUBLE_EQ(2000.0, BalanceOf(&table0_, 0) + BalanceOf(&table1_, 1));
}

// A commits between B's read and B's validation: B's read-set entry for the
// container-1 record is stale and the commit must abort, exactly as with
// the node-allocating sets.
TEST_F(MultiContainerTest, StaleCrossContainerReadFailsValidation) {
  TidSource tids;
  Row key = {Value(int64_t{1})};
  SiloTxn reader(&epochs_);
  ASSERT_TRUE(reader.Get(&table0_, key, 0).ok());
  ASSERT_TRUE(reader.Get(&table1_, key, 1).ok());
  Row bump = {Value(int64_t{1}), Value(1.0)};
  ASSERT_TRUE(reader.Update(&table0_, key, bump, 0).ok());

  SiloTxn writer(&epochs_);
  ASSERT_TRUE(writer.Update(&table1_, key, bump, 1).ok());
  ASSERT_TRUE(writer.Commit(&tids).ok());

  StatusOr<uint64_t> outcome = reader.Commit(&tids);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsAbort());
  // The failed commit must have released every lock: a fresh transaction
  // can write both records.
  SiloTxn retry(&epochs_);
  ASSERT_TRUE(retry.Update(&table0_, key, bump, 0).ok());
  ASSERT_TRUE(retry.Update(&table1_, key, bump, 1).ok());
  EXPECT_TRUE(retry.Commit(&tids).ok());
}

// A's miss on container 1 goes into the node set; a foreign insert of that
// key before A validates is a cross-container phantom and must abort A.
TEST_F(MultiContainerTest, CrossContainerPhantomFailsNodeValidation) {
  TidSource tids;
  SiloTxn scanner(&epochs_);
  EXPECT_TRUE(
      scanner.Get(&table1_, {Value(int64_t{7})}, 1).status().IsNotFound());
  ASSERT_GT(scanner.node_set_size(), 0u);
  Row bump = {Value(int64_t{1}), Value(5.0)};
  ASSERT_TRUE(scanner.Update(&table0_, {Value(int64_t{1})}, bump, 0).ok());

  SiloTxn inserter(&epochs_);
  ASSERT_TRUE(
      inserter.Insert(&table1_, {Value(int64_t{7}), Value(1.0)}, 1).ok());
  ASSERT_TRUE(inserter.Commit(&tids).ok());

  StatusOr<uint64_t> outcome = scanner.Commit(&tids);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsAbort());
}

TEST(TidSourceTest, MonotoneAndEpochAware) {
  TidSource tids;
  uint64_t a = tids.NextCommitTid(0, 1);
  uint64_t b = tids.NextCommitTid(0, 1);
  EXPECT_GT(b, a);
  uint64_t c = tids.NextCommitTid(TidWord::Make(1, 500), 1);
  EXPECT_GT(c, TidWord::Make(1, 500));
  uint64_t d = tids.NextCommitTid(0, 9);
  EXPECT_EQ(9u, TidWord::Epoch(d));
}

}  // namespace
}  // namespace reactdb

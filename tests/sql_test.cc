// SQL front-end tests: tokenizer, expression parsing, and statement
// execution against the transactional query layer.
#include <gtest/gtest.h>

#include "src/query/sql.h"
#include "src/util/logging.h"

namespace reactdb {
namespace {

using sql_internal::ParseExpression;
using sql_internal::Token;
using sql_internal::Tokenize;

// --- Tokenizer ------------------------------------------------------------

TEST(SqlTokenizer, BasicKinds) {
  auto tokens = Tokenize("SELECT * FROM t WHERE a >= 2.5 AND b = 'x''y'");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::pair<Token::Kind, std::string>> expect = {
      {Token::Kind::kIdent, "SELECT"}, {Token::Kind::kSymbol, "*"},
      {Token::Kind::kIdent, "FROM"},   {Token::Kind::kIdent, "t"},
      {Token::Kind::kIdent, "WHERE"},  {Token::Kind::kIdent, "a"},
      {Token::Kind::kSymbol, ">="},    {Token::Kind::kNumber, "2.5"},
      {Token::Kind::kIdent, "AND"},    {Token::Kind::kIdent, "b"},
      {Token::Kind::kSymbol, "="},     {Token::Kind::kString, "x'y"},
      {Token::Kind::kEnd, ""},
  };
  ASSERT_EQ(expect.size(), tokens->size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].first, (*tokens)[i].kind) << i;
    EXPECT_EQ(expect[i].second, (*tokens)[i].text) << i;
  }
}

TEST(SqlTokenizer, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

// --- Expression parser -------------------------------------------------------

TEST(SqlExpr, PrecedenceAndParens) {
  Schema schema = SchemaBuilder("t")
                      .AddColumn("a", ValueType::kInt64)
                      .AddColumn("b", ValueType::kInt64)
                      .SetKey({"a"})
                      .Build()
                      .value();
  Row row = {Value(int64_t{6}), Value(int64_t{2})};
  // * binds tighter than +: 6 + 2*3 = 12
  auto e1 = ParseExpression("a + b * 3");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(12, e1->Eval(row, schema)->AsInt64());
  // parens override
  auto e2 = ParseExpression("(a + b) * 3");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(24, e2->Eval(row, schema)->AsInt64());
  // comparison + boolean: AND binds tighter than OR
  auto e3 = ParseExpression("a = 1 OR a = 6 AND b = 2");
  ASSERT_TRUE(e3.ok());
  EXPECT_TRUE(e3->Test(row, schema));
  // NOT
  auto e4 = ParseExpression("NOT a < b");
  ASSERT_TRUE(e4.ok());
  EXPECT_TRUE(e4->Test(row, schema));
  // unary minus
  auto e5 = ParseExpression("a + -2");
  ASSERT_TRUE(e5.ok());
  EXPECT_EQ(4, e5->Eval(row, schema)->AsInt64());
  EXPECT_FALSE(ParseExpression("a +").ok());
  EXPECT_FALSE(ParseExpression("a = 1 extra").ok());
}

// --- Statement execution ------------------------------------------------------

class SqlExecTest : public ::testing::Test {
 protected:
  SqlExecTest()
      : table_(SchemaBuilder("orders")
                   .AddColumn("ts", ValueType::kInt64)
                   .AddColumn("wallet", ValueType::kInt64)
                   .AddColumn("value", ValueType::kDouble)
                   .AddColumn("settled", ValueType::kString)
                   .SetKey({"ts"})
                   .Build()
                   .value()) {
    SiloTxn loader(&epochs_);
    for (int64_t i = 1; i <= 20; ++i) {
      REACTDB_CHECK_OK(loader.Insert(
          &table_,
          {Value(i), Value(i * 10), Value(i * 1.5),
           Value(i % 4 == 0 ? "Y" : "N")},
          0));
    }
    REACTDB_CHECK_OK(loader.Commit(&tids_).status());
    resolver_ = [this](const std::string& name) -> StatusOr<Table*> {
      if (name == "orders") return &table_;
      return Status::NotFound("no relation " + name);
    };
  }

  StatusOr<SqlResult> Sql(SiloTxn* txn, const std::string& sql) {
    return ExecuteSql(txn, resolver_, 0, sql);
  }

  EpochManager epochs_;
  TidSource tids_;
  Table table_;
  TableResolver resolver_;
};

TEST_F(SqlExecTest, SelectStarWithWhere) {
  SiloTxn txn(&epochs_);
  auto r = Sql(&txn, "SELECT * FROM orders WHERE settled = 'Y'");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(5u, r->rows.size());  // ts 4, 8, 12, 16, 20
  txn.Abort();
}

TEST_F(SqlExecTest, SelectOrderByKeyDescLimit) {
  SiloTxn txn(&epochs_);
  auto r = Sql(&txn,
               "SELECT * FROM orders WHERE settled = 'N' "
               "ORDER BY KEY DESC LIMIT 3");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(3u, r->rows.size());
  EXPECT_EQ(19, r->rows[0][0].AsInt64());
  EXPECT_EQ(18, r->rows[1][0].AsInt64());
  EXPECT_EQ(17, r->rows[2][0].AsInt64());
  txn.Abort();
}

TEST_F(SqlExecTest, Aggregates) {
  SiloTxn txn(&epochs_);
  auto sum = Sql(&txn, "SELECT SUM(value) FROM orders WHERE settled = 'N'");
  ASSERT_TRUE(sum.ok()) << sum.status();
  ASSERT_TRUE(sum->has_scalar);
  // All but 4,8,12,16,20: sum(i*1.5) over the rest.
  double expected = 0;
  for (int i = 1; i <= 20; ++i) {
    if (i % 4 != 0) expected += i * 1.5;
  }
  EXPECT_DOUBLE_EQ(expected, sum->scalar.AsNumeric());

  auto count = Sql(&txn, "SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(20, count->scalar.AsInt64());

  auto min = Sql(&txn, "SELECT MIN(value) FROM orders");
  EXPECT_DOUBLE_EQ(1.5, min->scalar.AsNumeric());
  auto max = Sql(&txn, "SELECT MAX(wallet) FROM orders");
  EXPECT_EQ(200, max->scalar.AsInt64());
  txn.Abort();
}

TEST_F(SqlExecTest, UpdateWithExpressions) {
  {
    SiloTxn txn(&epochs_);
    auto r = Sql(&txn,
                 "UPDATE orders SET value = value * 2, settled = 'Y' "
                 "WHERE ts <= 2");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(2, r->affected);
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  SiloTxn check(&epochs_);
  auto r = Sql(&check, "SELECT * FROM orders WHERE ts = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(3.0, r->rows[0][2].AsNumeric());
  EXPECT_EQ("Y", r->rows[0][3].AsString());
  check.Abort();
}

TEST_F(SqlExecTest, InsertAndDelete) {
  {
    SiloTxn txn(&epochs_);
    auto ins = Sql(&txn,
                   "INSERT INTO orders VALUES (100, 7, 9.5, 'N'), "
                   "(101, 8, 1.25, 'N')");
    ASSERT_TRUE(ins.ok()) << ins.status();
    EXPECT_EQ(2, ins->affected);
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  {
    SiloTxn txn(&epochs_);
    auto del = Sql(&txn, "DELETE FROM orders WHERE wallet >= 100");
    ASSERT_TRUE(del.ok()) << del.status();
    EXPECT_EQ(11, del->affected);  // ts 10..20 (the inserts have wallet < 100)
    ASSERT_TRUE(txn.Commit(&tids_).ok());
  }
  SiloTxn check(&epochs_);
  auto count = Sql(&check, "SELECT COUNT(*) FROM orders");
  EXPECT_EQ(11, count->scalar.AsInt64());  // 9 originals + 2 inserts
  check.Abort();
}

TEST_F(SqlExecTest, TransactionalityOfSqlStatements) {
  {
    SiloTxn txn(&epochs_);
    ASSERT_TRUE(Sql(&txn, "UPDATE orders SET value = 0 WHERE ts = 5").ok());
    txn.Abort();  // rolled back
  }
  SiloTxn check(&epochs_);
  auto r = Sql(&check, "SELECT * FROM orders WHERE ts = 5");
  EXPECT_DOUBLE_EQ(7.5, r->rows[0][2].AsNumeric());
  check.Abort();
}

TEST_F(SqlExecTest, Errors) {
  SiloTxn txn(&epochs_);
  EXPECT_FALSE(Sql(&txn, "DROP TABLE orders").ok());
  EXPECT_FALSE(Sql(&txn, "SELECT * FROM missing_table").ok());
  EXPECT_FALSE(Sql(&txn, "SELECT AVG(value) FROM orders").ok());
  EXPECT_FALSE(Sql(&txn, "SELECT * FROM orders garbage").ok());
  EXPECT_FALSE(Sql(&txn, "INSERT INTO orders VALUES (1)").ok());  // arity
  txn.Abort();
}

}  // namespace
}  // namespace reactdb

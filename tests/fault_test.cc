// Fault-injection tests (PR 8 robustness): injector determinism (same seed
// => same fire sequence, Nth-operation schedules, rejection bursts), a
// seeded chaos matrix on smallbank under SimRuntime — link drop / delay /
// duplicate / reorder, volatile and logged — asserting balance
// conservation, exactly-once session completion, and byte-identical replay
// from the plan seed (fire log, digest, and final table dump all equal),
// end-to-end deadline expiry (terminal, no partial effects, metered), and
// overload shedding (watermark + injected admission bursts) with
// backoff-driven retry convergence.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/audit/checker.h"
#include "src/fault/fault.h"
#include "src/runtime/reactdb.h"
#include "src/storage/record.h"
#include "src/util/logging.h"
#include "src/workloads/smallbank/smallbank.h"

namespace reactdb {
namespace {

namespace fs = std::filesystem;
using client::Database;
using fault::FaultInjector;
using fault::FaultOptions;
using fault::SiteSpec;
using smallbank::CustomerName;

constexpr int64_t kCustomers = 8;
constexpr int kContainers = 2;
constexpr int kTransfers = 60;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "reactdb_fault_" + name;
  fs::remove_all(dir);
  return dir;
}

// --- FaultInjector unit determinism -----------------------------------------

TEST(FaultInjectorTest, SameSeedSameFireSequence) {
  FaultInjector a(42), b(42);
  SiteSpec spec;
  spec.probability = 0.3;
  a.Arm("link.drop", spec);
  b.Arm("link.drop", spec);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.ShouldFire("link.drop"), b.ShouldFire("link.drop"))
        << "draw " << i << " diverged under equal seeds";
  }
  EXPECT_GT(a.fires("link.drop"), 0u);
  EXPECT_EQ(a.fires("link.drop"), b.fires("link.drop"));
  EXPECT_EQ(a.FireLog(), b.FireLog());
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(1), b(2);
  SiteSpec spec;
  spec.probability = 0.3;
  a.Arm("link.drop", spec);
  b.Arm("link.drop", spec);
  for (int i = 0; i < 1000; ++i) {
    a.ShouldFire("link.drop");
    b.ShouldFire("link.drop");
  }
  EXPECT_NE(a.FireLog(), b.FireLog());
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(FaultInjectorTest, NthOperationScheduleIsExact) {
  // "Fail exactly the 5th draw": probability 1, skip 4, fire once.
  FaultInjector inj(7);
  SiteSpec spec;
  spec.probability = 1;
  spec.after_n = 4;
  spec.max_fires = 1;
  inj.Arm("log.fsync", spec);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(i == 4, inj.ShouldFire("log.fsync")) << "draw " << i;
  }
  EXPECT_EQ(1u, inj.fires("log.fsync"));
  EXPECT_EQ(10u, inj.draws("log.fsync"));
  ASSERT_EQ(1u, inj.FireLog().size());
  EXPECT_EQ("log.fsync@4", inj.FireLog()[0]);
}

TEST(FaultInjectorTest, BurstFiresConsecutivelyAndCountsOnce) {
  FaultInjector inj(7);
  SiteSpec spec;
  spec.probability = 1;
  spec.after_n = 2;
  spec.max_fires = 1;
  spec.burst = 3;
  inj.Arm("admission.reject", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(inj.ShouldFire("admission.reject"));
  EXPECT_EQ((std::vector<bool>{false, false, true, true, true, false, false,
                               false}),
            fired);
  // The whole burst is one fire against max_fires, three fire-log entries.
  EXPECT_EQ(1u, inj.fires("admission.reject"));
  EXPECT_EQ(3u, inj.total_fires());
}

TEST(FaultInjectorTest, UnarmedSiteNeverFiresOrDraws) {
  FaultInjector inj(7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.ShouldFire("link.dup"));
  EXPECT_EQ(0u, inj.draws("link.dup"));
  EXPECT_EQ(0u, inj.total_fires());
  EXPECT_EQ(FaultInjector(7).Digest(), inj.Digest());
}

TEST(FaultInjectorTest, ArmingOneSiteDoesNotShiftAnother) {
  // Per-site seeded streams: link.drop's decisions are identical whether or
  // not link.delay is also armed.
  SiteSpec spec;
  spec.probability = 0.3;
  FaultInjector alone(9), both(9);
  alone.Arm("link.drop", spec);
  both.Arm("link.drop", spec);
  both.Arm("link.delay", spec);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(alone.ShouldFire("link.drop"), both.ShouldFire("link.drop"));
    both.ShouldFire("link.delay");
  }
  EXPECT_EQ(alone.fires("link.drop"), both.fires("link.drop"));
}

// --- Chaos matrix on smallbank under SimRuntime -----------------------------

/// Full deterministic table dump (primary rows + secondary entries): two
/// runs with equal dumps ended in exactly the same database state.
std::string DumpState(Database& db, const ReactorDatabaseDef& def) {
  std::string out;
  for (const std::string& name : def.ReactorNames()) {
    Reactor* reactor = db.FindReactor(name);
    const std::vector<Table*>& tables = reactor->bound_tables();
    for (size_t slot = 0; slot < tables.size(); ++slot) {
      Table* table = tables[slot];
      if (table == nullptr) continue;
      out += "== " + name + "/" + table->name() + "\n";
      Status s = db.RunDirect([&](SiloTxn& txn) -> Status {
        return txn.Scan(table, {}, {}, -1,
                        [&out](const Row& row) {
                          out += RowToString(row) + "\n";
                          return true;
                        },
                        reactor->container_id());
      });
      EXPECT_TRUE(s.ok()) << s;
      for (size_t i = 0; i < table->num_secondary_indexes(); ++i) {
        out += "-- index " + std::to_string(i) + "\n";
        table->secondary(i).Scan(
            "", "", [&out](const std::string& key, Record* rec) {
              RecordSnapshot snap = ReadRecord(*rec);
              if (snap.row == nullptr) return true;  // tombstone
              out += key + " -> " + RowToString(*snap.row) + "\n";
              return true;
            });
      }
    }
  }
  return out;
}

struct ChaosResult {
  client::SessionStats stats;
  uint64_t fault_fires = 0;
  uint64_t fault_digest = 0;
  std::vector<std::string> fire_log;
  double total_balance = 0;
  std::string state;
  uint64_t runtime_shed = 0;
  /// Logged runs only: online-auditor status at shutdown plus the offline
  /// re-check of the retained segments.
  audit::AuditorStatus online_audit;
  std::optional<audit::DirectoryAuditResult> offline_audit;
};

/// One seeded chaos run: cross-container transfers (sources on container 1,
/// destinations on container 0) through a retrying session on a sim
/// Database with `fo` armed. The submission schedule is a pure function of
/// the loop index, so two runs differ only by the fault plan.
ChaosResult RunChaos(FaultOptions fo, const std::string& data_dir) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  Database db;
  Database::Options options = Database::Sim();
  options.fault = fo;
  if (!data_dir.empty()) {
    options.data_dir = data_dir;
    options.log_flush_interval_us = 0;
    // Every logged chaos run also runs under audit: link faults must never
    // make the committed history non-serializable.
    options.audit = true;
  }
  REACTDB_CHECK_OK(db.Open(def.get(), DeploymentConfig::SharedNothing(kContainers),
                           options));
  REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
  smallbank::Handles handles =
      smallbank::ResolveHandles(db.runtime(), kCustomers);

  client::SessionOptions sopts;
  sopts.max_outstanding = 8;
  sopts.retry.max_attempts = 50;
  sopts.retry.initial_backoff_us = 10;  // keep virtual chaos runs short
  auto session = db.CreateSession(sopts);
  for (int i = 0; i < kTransfers; ++i) {
    size_t src = static_cast<size_t>(4 + i % 4);
    int64_t dst = i % 4;
    session
        ->Submit(handles.customers[src], smallbank::kTransferProc,
                 {Value(CustomerName(dst)), Value(1.0), Value(false)})
        .Then([](client::TxnOutcome) {});
  }
  session->Drain();

  ChaosResult r;
  r.stats = session->stats();
  if (db.fault_injector() != nullptr) {
    r.fault_fires = db.fault_injector()->total_fires();
    r.fault_digest = db.fault_injector()->Digest();
    r.fire_log = db.fault_injector()->FireLog();
  }
  r.total_balance = smallbank::TotalBalance(db.runtime(), kCustomers).value();
  r.state = DumpState(db, *def);
  r.runtime_shed = db.stats().shed.load();
  session.reset();
  db.Shutdown();
  if (!data_dir.empty()) {
    r.online_audit = db.AuditStatus();
    auto offline = audit::AuditDirectory(data_dir);
    EXPECT_TRUE(offline.ok()) << offline.status().ToString();
    if (offline.ok()) r.offline_audit = *std::move(offline);
  }
  return r;
}

FaultOptions ChaosMode(const std::string& name) {
  FaultOptions fo;
  fo.enabled = true;
  fo.seed = 0xC0FFEE;
  // CI chaos smoke: sweep plan seeds without recompiling.
  if (const char* env = std::getenv("REACTDB_CHAOS_SEED")) {
    fo.seed = std::strtoull(env, nullptr, 0);
  }
  if (name == "drop" || name == "mixed") fo.link_drop.probability = 0.10;
  if (name == "delay" || name == "mixed") fo.link_delay.probability = 0.20;
  if (name == "dup" || name == "mixed") fo.link_dup.probability = 0.20;
  if (name == "reorder" || name == "mixed") fo.link_reorder.probability = 0.30;
  return fo;
}

// Every link-fault mode, volatile and logged: transfers conserve the total
// balance and every submission completes exactly once (committed ==
// submitted despite drops, duplicates, and reordering), with the fault
// plan actually firing.
TEST(ChaosMatrix, ConservationAndExactlyOnceUnderLinkFaults) {
  const double initial = 2 * 10000.0 * kCustomers;
  for (const char* mode : {"drop", "delay", "dup", "reorder", "mixed"}) {
    for (bool logged : {false, true}) {
      SCOPED_TRACE(std::string(mode) + (logged ? "/logged" : "/volatile"));
      std::string dir =
          logged ? FreshDir(std::string("chaos_") + mode) : std::string();
      ChaosResult r = RunChaos(ChaosMode(mode), dir);
      EXPECT_GT(r.fault_fires, 0u) << "fault plan never fired";
      EXPECT_DOUBLE_EQ(initial, r.total_balance)
          << "transfers move money, never create or destroy it";
      EXPECT_EQ(static_cast<uint64_t>(kTransfers), r.stats.committed)
          << "exactly-once completion: every submission must commit";
      EXPECT_EQ(0u, r.stats.failed);
      EXPECT_EQ(0u, r.stats.deadline_exceeded);
      if (logged) {
        // Audit both ways: the trailing online auditor saw the whole run
        // clean, and the offline checker re-verifies the retained segments.
        EXPECT_FALSE(r.online_audit.violation) << r.online_audit.first_violation;
        EXPECT_GT(r.online_audit.records, 0u) << "audit capture never ran";
        ASSERT_TRUE(r.offline_audit.has_value());
        EXPECT_TRUE(r.offline_audit->clean())
            << audit::FormatViolation(r.offline_audit->violations.front());
        EXPECT_GT(r.offline_audit->stats.txns, 0u);
      }
    }
  }
}

// The isolation-audit mutation test, CC-broken direction: with every commit
// skipping Silo read-set validation under contention, lost updates really
// happen — and both the trailing online auditor and the offline checker
// must detect them and pinpoint an offending transaction. (The CC-intact
// direction is the matrix above: every logged chaos run audits clean.)
TEST(ChaosMatrix, SkipValidationMutationIsDetected) {
  FaultOptions fo = ChaosMode("mixed");
  fo.cc_skip_validation.probability = 1;  // every commit skips validation
  ChaosResult r = RunChaos(fo, FreshDir("mutation"));
  EXPECT_TRUE(r.online_audit.violation)
      << "online auditor missed the injected CC hole";
  ASSERT_TRUE(r.offline_audit.has_value());
  ASSERT_FALSE(r.offline_audit->clean())
      << "offline checker missed the injected CC hole";
  const audit::Violation& v = r.offline_audit->violations.front();
  EXPECT_NE(0u, v.tid) << "violation must pinpoint a transaction";
  EXPECT_FALSE(audit::FormatViolation(v).empty());
  // The online auditor latched the same history failure.
  EXPECT_FALSE(r.online_audit.first_violation.empty());
}

// The replay guarantee: under SimRuntime the same plan seed reproduces the
// identical fault sequence (fire log and digest) and the identical final
// database state, byte for byte; a different seed makes different fault
// decisions.
TEST(ChaosMatrix, SameSeedReplaysByteIdentically) {
  ChaosResult a = RunChaos(ChaosMode("mixed"), "");
  ChaosResult b = RunChaos(ChaosMode("mixed"), "");
  ASSERT_GT(a.fault_fires, 0u);
  EXPECT_EQ(a.fire_log, b.fire_log);
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.state, b.state) << "final table dumps diverged under one seed";
  EXPECT_EQ(a.stats.committed, b.stats.committed);
  EXPECT_EQ(a.stats.retried, b.stats.retried);

  FaultOptions other = ChaosMode("mixed");
  other.seed ^= 0xBADBEEF;  // distinct from any swept seed
  ChaosResult c = RunChaos(other, "");
  EXPECT_NE(a.fire_log, c.fire_log)
      << "different plan seeds made identical fault decisions";
}

TEST(ChaosMatrix, SameSeedReplaysByteIdenticallyWhenLogged) {
  ChaosResult a = RunChaos(ChaosMode("mixed"), FreshDir("replay_a"));
  ChaosResult b = RunChaos(ChaosMode("mixed"), FreshDir("replay_b"));
  ASSERT_GT(a.fault_fires, 0u);
  EXPECT_EQ(a.fire_log, b.fire_log);
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.state, b.state);
}

// --- End-to-end deadlines ---------------------------------------------------

/// Sim smallbank database without faults, plus session handles.
struct DeadlineRig {
  std::unique_ptr<ReactorDatabaseDef> def;
  Database db;
  smallbank::Handles handles;

  DeadlineRig() {
    def = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def.get(), kCustomers);
    REACTDB_CHECK_OK(db.Open(
        def.get(), DeploymentConfig::SharedNothing(kContainers),
        Database::Sim()));
    REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
    handles = smallbank::ResolveHandles(db.runtime(), kCustomers);
  }
};

// A cross-container transfer with a sub-cost budget must expire: the
// default cost calibration charges >0.5us before the first deadline
// boundary, so kDeadlineExceeded is deterministic under virtual time — and
// terminal (attempts == 1, never retried) with no partial effects (neither
// the debit nor the credit survives).
TEST(Deadline, TinyBudgetExpiresTerminallyWithoutPartialEffects) {
  DeadlineRig rig;
  const double initial =
      smallbank::TotalBalance(rig.db.runtime(), kCustomers).value();

  auto session = rig.db.CreateSession({.max_outstanding = 4});
  client::TxnOutcome out = session
                               ->Submit(rig.handles.customers[4],
                                        smallbank::kTransferProc,
                                        {Value(CustomerName(0)), Value(5.0),
                                         Value(false)},
                                        /*budget_us=*/0.5)
                               .Wait();
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded()) << out.status().ToString();
  EXPECT_EQ(1, out.attempts) << "deadline expiry must never be retried";

  client::SessionStats stats = session->stats();
  EXPECT_EQ(1u, stats.deadline_exceeded);
  EXPECT_EQ(0u, stats.committed);
  EXPECT_EQ(0u, stats.retried);
  EXPECT_EQ(1u, rig.db.stats().aborted_deadline.load());

  // No partial effects: the aborted transfer moved nothing.
  EXPECT_DOUBLE_EQ(initial,
                   smallbank::TotalBalance(rig.db.runtime(), kCustomers).value());
  client::TxnOutcome dst =
      session->Execute(rig.handles.customers[0], smallbank::kBalanceProc, {});
  ASSERT_TRUE(dst.ok()) << dst.status().ToString();
  EXPECT_DOUBLE_EQ(20000.0, dst.result->AsNumeric());

  // The expiry is metered per (reactor, proc).
  std::string prom = rig.db.Stats().ToPrometheus();
  EXPECT_NE(std::string::npos,
            prom.find("reactdb_proc_deadline_exceeded_total"))
      << prom;
}

TEST(Deadline, AmpleBudgetCommits) {
  DeadlineRig rig;
  auto session = rig.db.CreateSession({.max_outstanding = 4});
  client::TxnOutcome out = session
                               ->Submit(rig.handles.customers[4],
                                        smallbank::kTransferProc,
                                        {Value(CustomerName(0)), Value(5.0),
                                         Value(false)},
                                        /*budget_us=*/1e6)
                               .Wait();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(0u, session->stats().deadline_exceeded);
  EXPECT_EQ(0u, rig.db.stats().aborted_deadline.load());
}

// SessionOptions::default_budget_us applies when Submit passes no explicit
// budget, and an explicit per-call budget overrides it.
TEST(Deadline, DefaultBudgetAppliesAndPerCallOverrides) {
  DeadlineRig rig;
  client::SessionOptions sopts;
  sopts.max_outstanding = 4;
  sopts.default_budget_us = 0.5;
  auto session = rig.db.CreateSession(sopts);

  client::TxnOutcome expired =
      session
          ->Submit(rig.handles.customers[5], smallbank::kTransferProc,
                   {Value(CustomerName(1)), Value(1.0), Value(false)})
          .Wait();
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();

  client::TxnOutcome committed =
      session
          ->Submit(rig.handles.customers[5], smallbank::kTransferProc,
                   {Value(CustomerName(1)), Value(1.0), Value(false)},
                   /*budget_us=*/1e6)
          .Wait();
  EXPECT_TRUE(committed.ok()) << committed.status().ToString();
}

// --- Overload shedding and backoff ------------------------------------------

// Outstanding-root watermark: flooding a small watermark sheds new
// submissions fast with kOverloaded, while session retries (which bypass
// admission) converge — every submission eventually commits, the runtime
// counts the sheds, and the backoff histogram shows the retries actually
// waited.
TEST(Overload, WatermarkShedsAndBackoffRetriesConverge) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  Database db;
  DeploymentConfig dc = DeploymentConfig::SharedNothing(kContainers);
  dc.shed_outstanding_roots = 2;
  REACTDB_CHECK_OK(db.Open(def.get(), dc, Database::Sim()));
  REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
  smallbank::Handles handles =
      smallbank::ResolveHandles(db.runtime(), kCustomers);

  client::SessionOptions sopts;
  sopts.max_outstanding = 16;  // window far above the admission watermark
  sopts.retry.max_attempts = 100;
  sopts.retry.initial_backoff_us = 5;
  auto session = db.CreateSession(sopts);
  constexpr int kTxns = 40;
  for (int i = 0; i < kTxns; ++i) {
    session
        ->Submit(handles.customers[static_cast<size_t>(i % 4)],
                 smallbank::kTransactSavingProc, {Value(1.0)})
        .Then([](client::TxnOutcome) {});
  }
  session->Drain();

  client::SessionStats stats = session->stats();
  EXPECT_EQ(static_cast<uint64_t>(kTxns), stats.committed)
      << "retry-with-backoff must convert sheds into delayed completion";
  EXPECT_EQ(0u, stats.failed);
  EXPECT_GT(db.stats().shed.load(), 0u) << "watermark never shed";
  EXPECT_GT(stats.retried, 0u);
  EXPECT_GT(stats.backoff_us.count(), 0u)
      << "every shed retry should wait a jittered backoff";

  std::string prom = db.Stats().ToPrometheus();
  EXPECT_NE(std::string::npos, prom.find("reactdb_txn_shed_total")) << prom;
  EXPECT_NE(std::string::npos, prom.find("reactdb_mailbox_depth_hw")) << prom;
}

// An injected admission.reject burst sheds exactly `burst` consecutive
// submissions with kOverloaded; without retry they surface to the caller
// as terminal rejections, and everything else commits untouched.
TEST(Overload, InjectedAdmissionBurstShedsExactly) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  Database db;
  Database::Options options = Database::Sim();
  options.fault.enabled = true;
  options.fault.seed = 11;
  options.fault.admission_reject.probability = 1;
  options.fault.admission_reject.after_n = 2;
  options.fault.admission_reject.max_fires = 1;
  options.fault.admission_reject.burst = 3;
  REACTDB_CHECK_OK(
      db.Open(def.get(), DeploymentConfig::SharedNothing(kContainers), options));
  REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
  smallbank::Handles handles =
      smallbank::ResolveHandles(db.runtime(), kCustomers);

  client::SessionOptions sopts;
  sopts.max_outstanding = 1;  // serialize: draw order == submission order
  sopts.retry.max_attempts = 1;
  auto session = db.CreateSession(sopts);
  constexpr int kTxns = 10;
  int shed = 0, committed = 0;
  for (int i = 0; i < kTxns; ++i) {
    client::TxnOutcome out =
        session
            ->Submit(handles.customers[static_cast<size_t>(i % 4)],
                     smallbank::kTransactSavingProc, {Value(1.0)})
            .Wait();
    if (out.ok()) {
      ++committed;
    } else {
      EXPECT_TRUE(out.status().IsOverloaded()) << out.status().ToString();
      EXPECT_TRUE(out.rejected) << "shed submissions never reach the runtime";
      EXPECT_TRUE(i >= 2 && i < 5) << "burst must hit draws 2..4, hit " << i;
      ++shed;
    }
  }
  EXPECT_EQ(3, shed);
  EXPECT_EQ(kTxns - 3, committed);
  EXPECT_EQ(3u, db.stats().shed.load());
  EXPECT_EQ(3u, session->stats().shed);
  // One fire against the schedule (the burst), three fire-log entries.
  EXPECT_EQ(1u, db.fault_injector()->fires("admission.reject"));
  EXPECT_EQ(3u, db.fault_injector()->total_fires());
}

// Retrying sessions absorb an injected burst: with retry_overloaded (the
// default) the three shed submissions come back with backoff and commit.
TEST(Overload, RetryAbsorbsInjectedBurst) {
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  Database db;
  Database::Options options = Database::Sim();
  options.fault.enabled = true;
  options.fault.seed = 11;
  options.fault.admission_reject.probability = 1;
  options.fault.admission_reject.after_n = 2;
  options.fault.admission_reject.max_fires = 1;
  options.fault.admission_reject.burst = 3;
  REACTDB_CHECK_OK(
      db.Open(def.get(), DeploymentConfig::SharedNothing(kContainers), options));
  REACTDB_CHECK_OK(smallbank::Load(db.runtime(), kCustomers));
  smallbank::Handles handles =
      smallbank::ResolveHandles(db.runtime(), kCustomers);

  client::SessionOptions sopts;
  sopts.max_outstanding = 4;
  sopts.retry.max_attempts = 10;
  sopts.retry.initial_backoff_us = 5;
  auto session = db.CreateSession(sopts);
  constexpr int kTxns = 10;
  for (int i = 0; i < kTxns; ++i) {
    session
        ->Submit(handles.customers[static_cast<size_t>(i % 4)],
                 smallbank::kTransactSavingProc, {Value(1.0)})
        .Then([](client::TxnOutcome) {});
  }
  session->Drain();

  client::SessionStats stats = session->stats();
  EXPECT_EQ(static_cast<uint64_t>(kTxns), stats.committed);
  EXPECT_EQ(0u, stats.shed) << "no shed may surface as a final outcome";
  EXPECT_GE(stats.retried, 3u);
  EXPECT_GE(stats.backoff_us.count(), 3u);
  EXPECT_EQ(3u, db.stats().shed.load());
}

}  // namespace
}  // namespace reactdb

// Allocation-count regression tests for the zero-allocation transaction hot
// path: global operator new/delete are replaced with counting versions, and
// a warmed smallbank-style point read/update transaction must perform zero
// heap allocations through submit-execute-validate-commit at the
// storage/txn layer (arena-backed sets, inline key buffers, recycled
// install rows).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/log/log_shard.h"
#include "src/obs/metrics.h"
#include "src/reactor/symbol.h"
#include "src/storage/table.h"
#include "src/txn/epoch.h"
#include "src/txn/silo_txn.h"
#include "src/util/arena.h"
#include "src/util/keycodec.h"

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace reactdb {
namespace {

Schema SavingsSchema() {
  return SchemaBuilder("savings")
      .AddColumn("cust_id", ValueType::kInt64)
      .AddColumn("balance", ValueType::kDouble)
      .SetKey({"cust_id"})
      .Build()
      .value();
}

// The smallbank transact_saving footprint at the transaction layer: point
// read of savings by cust_id, balance update, Silo commit. One iteration ==
// one root transaction; the arena resets at the transaction boundary
// exactly as the executor loop does, and the epoch advances so replaced
// rows recycle into the install pool.
class WarmedSmallbankTxn {
 public:
  /// `log` (optional) enables redo capture: the table gets a durable
  /// identity and every transaction binds the shard, exactly as the
  /// runtime does when a data_dir is configured.
  explicit WarmedSmallbankTxn(log::LogShard* log = nullptr)
      : savings_(SavingsSchema()), key_({Value(int64_t{1})}), log_(log) {
    if (log_ != nullptr) {
      savings_.BindDurableId(ReactorId{0}, TableSlot{0});
    }
    SiloTxn loader(&epochs_, &arena_);
    loaded_ =
        loader.Insert(&savings_, {Value(int64_t{1}), Value(10000.0)}, 0).ok() &&
        loader.Commit(&tids_).ok();
    arena_.Reset();
  }

  bool RunOne() {
    bool ok = true;
    {
      SiloTxn txn(&epochs_, &arena_);
      if (log_ != nullptr) txn.BindLog(log_);
      ok &= txn.GetInto(&savings_, key_, &row_, 0).ok();
      updated_ = row_;
      updated_[1] = Value(updated_[1].AsDouble() + 1.0);
      ok &= txn.Update(&savings_, key_, updated_, 0).ok();
      ok &= txn.Commit(&tids_).ok();
    }
    arena_.Reset();
    // Periodic epoch ticks (as FinalizeRoot does every 64 roots) move
    // retired row versions past the grace period so they recycle into the
    // install pool. Ticking once per txn would burn through the TID word's
    // 22-bit epoch field in long runs.
    if (++txns_ % 32 == 0) {
      epochs_.Advance();
      epochs_.Advance();
      // Group-commit collection (as the per-container LogWriter does):
      // swap the shard buffer against a warm spare — steady state touches
      // no allocator on either side.
      if (log_ != nullptr) {
        collect_spare_.clear();
        log_->Collect(&collect_spare_);
      }
    }
    return ok;
  }

  EpochManager epochs_;
  Arena arena_;
  TidSource tids_;
  Table savings_;
  Row key_;
  Row row_;
  Row updated_;
  log::LogShard* log_ = nullptr;
  std::string collect_spare_;
  bool loaded_ = false;
  uint64_t txns_ = 0;
};

TEST(AllocationRegression, WarmedSmallbankPointTxnIsAllocationFree) {
  WarmedSmallbankTxn rig;
  ASSERT_TRUE(rig.loaded_);
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(rig.RunOne()) << "warmup " << i;
  ASSERT_GT(rig.epochs_.row_pool_size(), 0u) << "rows must recycle";

  g_allocs.store(0);
  g_counting.store(true);
  bool ok = true;
  for (int i = 0; i < 256; ++i) ok &= rig.RunOne();
  g_counting.store(false);

  EXPECT_TRUE(ok);
  EXPECT_EQ(0u, g_allocs.load())
      << "warmed point read/update transactions must not touch the heap";
}

// The durability gate: the same warmed point transaction with redo logging
// *enabled* must still perform zero heap allocations — record capture is
// arena-backed, shard appends land in a reserved buffer, and the writer's
// collection swaps warm buffers instead of copying.
TEST(AllocationRegression, WarmedPointTxnWithLoggingIsAllocationFree) {
  log::LogShard shard;
  WarmedSmallbankTxn rig(&shard);
  ASSERT_TRUE(rig.loaded_);
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(rig.RunOne()) << "warmup " << i;

  g_allocs.store(0);
  g_counting.store(true);
  bool ok = true;
  for (int i = 0; i < 256; ++i) ok &= rig.RunOne();
  g_counting.store(false);

  EXPECT_TRUE(ok);
  EXPECT_EQ(0u, g_allocs.load())
      << "redo logging must not add heap traffic to the warmed hot path";
  EXPECT_GT(shard.max_epoch(), 0u) << "the shard must actually see records";
}

// The observability gate: the same warmed point transaction with full
// metrics instrumentation — outcome counter, latency histogram observation,
// arena high-water gauge, exactly what FinalizeRoot records per root — must
// still perform zero heap allocations. The registry's sharded slots are
// pre-materialized at Freeze; hot-path updates are relaxed loads/stores.
TEST(AllocationRegression, WarmedPointTxnWithMetricsIsAllocationFree) {
  obs::MetricsRegistry reg;
  obs::MetricId committed = reg.Counter("reactdb_txn_committed_total", "c");
  obs::MetricId latency = reg.Histo("reactdb_txn_latency_us", "l");
  obs::MetricId arena_hw = reg.Gauge("reactdb_arena_used_bytes_hw", "a", {},
                                     obs::Aggregation::kMax);
  reg.Freeze(1);

  WarmedSmallbankTxn rig;
  ASSERT_TRUE(rig.loaded_);
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(rig.RunOne()) << "warmup " << i;

  g_allocs.store(0);
  g_counting.store(true);
  bool ok = true;
  for (int i = 0; i < 256; ++i) {
    ok &= rig.RunOne();
    reg.Add(0, committed);
    reg.Observe(0, latency, 1.0 + 0.01 * i);
    reg.GaugeMax(0, arena_hw,
                 static_cast<int64_t>(rig.arena_.bytes_used()));
  }
  g_counting.store(false);

  EXPECT_TRUE(ok);
  EXPECT_EQ(0u, g_allocs.load())
      << "metrics instrumentation must not add heap traffic to the hot path";
  EXPECT_DOUBLE_EQ(256,
                   reg.Collect().Value("reactdb_txn_committed_total"));
}

// The deadline gate: a warmed point transaction with a deadline *set* (but
// not expired) must stay allocation-free. Per root the runtime adds exactly
// what this loop adds — three boundary checks of a double against the
// session clock (dispatch, call, validate) and the dense per-proc outcome
// bump — none of which may touch the heap on the non-expired path.
TEST(AllocationRegression, WarmedPointTxnWithDeadlineSetIsAllocationFree) {
  obs::ProcOutcomeTable outcomes;
  outcomes.Init({1});
  WarmedSmallbankTxn rig;
  ASSERT_TRUE(rig.loaded_);
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(rig.RunOne()) << "warmup " << i;

  double now_us = 1000.0;
  g_allocs.store(0);
  g_counting.store(true);
  bool ok = true;
  bool expired = false;
  for (int i = 0; i < 256; ++i) {
    // Submit fixes the absolute deadline; each boundary re-reads the clock.
    const double deadline_us = now_us + 50.0;
    now_us += 1.0;  // dispatch boundary
    expired |= deadline_us > 0 && now_us > deadline_us;
    now_us += 1.0;  // call boundary
    expired |= deadline_us > 0 && now_us > deadline_us;
    ok &= rig.RunOne();
    now_us += 1.0;  // validate boundary
    expired |= deadline_us > 0 && now_us > deadline_us;
    outcomes.Bump(ReactorId{0}, ProcId{0}, /*committed=*/!expired);
  }
  g_counting.store(false);

  EXPECT_TRUE(ok);
  EXPECT_FALSE(expired);
  EXPECT_EQ(0u, g_allocs.load())
      << "a set-but-unexpired deadline must not add heap traffic";
  EXPECT_EQ(256u, outcomes.committed(ReactorId{0}, ProcId{0}));
  EXPECT_EQ(0u, outcomes.deadline_exceeded(ReactorId{0}, ProcId{0}));
}

TEST(AllocationRegression, WarmedKeyEncodeIsAllocationFree) {
  Row key = {Value(int64_t{123456}), Value(3.25)};
  KeyBuf buf;
  EncodeKeyTo(key, &buf);  // warm (inline storage only, but be uniform)

  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) EncodeKeyTo(key, &buf);
  g_counting.store(false);

  EXPECT_EQ(0u, g_allocs.load());
  EXPECT_EQ(EncodeKey(key), buf.ToString());
}

TEST(AllocationRegression, ReadOnlyTxnIsAllocationFree) {
  WarmedSmallbankTxn rig;
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(rig.RunOne());

  g_allocs.store(0);
  g_counting.store(true);
  bool ok = true;
  for (int i = 0; i < 256; ++i) {
    SiloTxn txn(&rig.epochs_, &rig.arena_);
    ok &= txn.GetInto(&rig.savings_, rig.key_, &rig.row_, 0).ok();
    ok &= txn.Commit(&rig.tids_).ok();
    rig.arena_.Reset();
  }
  g_counting.store(false);

  EXPECT_TRUE(ok);
  EXPECT_EQ(0u, g_allocs.load());
}

}  // namespace
}  // namespace reactdb

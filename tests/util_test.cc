// Unit tests for the util substrate: Status/StatusOr, Value, key codec
// (with order-preservation property sweeps), RNG, Zipfian, histogram,
// config parsing.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/util/config.h"
#include "src/util/histogram.h"
#include "src/util/keycodec.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/statusor.h"
#include "src/util/value.h"
#include "src/util/zipf.h"

namespace reactdb {
namespace {

// --- Status ------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(StatusCode::kOk, s.code());
  EXPECT_EQ("OK", s.ToString());
}

TEST(Status, AbortFamilies) {
  EXPECT_TRUE(Status::Aborted("x").IsAbort());
  EXPECT_TRUE(Status::UserAbort("x").IsAbort());
  EXPECT_TRUE(Status::SafetyAbort("x").IsAbort());
  EXPECT_FALSE(Status::NotFound("x").IsAbort());
  EXPECT_TRUE(Status::UserAbort().IsUserAbort());
  EXPECT_FALSE(Status::UserAbort().IsAborted());
}

TEST(Status, MessageInToString) {
  EXPECT_EQ("NotFound: no such row", Status::NotFound("no such row").ToString());
}

TEST(Status, IOErrorTaxonomy) {
  Status s = Status::IOError("fsync log/c0_000001.log: No space left");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kIOError, s.code());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_FALSE(s.IsAbort());  // device failures are not transaction aborts
  EXPECT_FALSE(Status::Internal("x").IsIOError());
  EXPECT_EQ("IOError", StatusCodeName(StatusCode::kIOError));
  EXPECT_EQ("IOError: torn frame", Status::IOError("torn frame").ToString());
}

TEST(Status, DeadlineExceededTaxonomy) {
  Status s = Status::DeadlineExceeded("deadline expired at dispatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, s.code());
  EXPECT_TRUE(s.IsDeadlineExceeded());
  // Expiry rolls the root back like an abort but is not in the abort
  // family: retry policies must see it as terminal, never resubmit.
  EXPECT_FALSE(s.IsAbort());
  EXPECT_FALSE(s.IsAborted());
  EXPECT_FALSE(Status::Aborted("x").IsDeadlineExceeded());
  EXPECT_FALSE(Status::Overloaded("x").IsDeadlineExceeded());
  EXPECT_EQ("DeadlineExceeded", StatusCodeName(StatusCode::kDeadlineExceeded));
  EXPECT_EQ("DeadlineExceeded: too slow",
            Status::DeadlineExceeded("too slow").ToString());
}

TEST(Status, OverloadedTaxonomy) {
  Status s = Status::Overloaded("admission: over watermark");
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_FALSE(s.IsAbort());
  EXPECT_FALSE(s.IsDeadlineExceeded());
  EXPECT_EQ("Overloaded", StatusCodeName(StatusCode::kOverloaded));
}

TEST(StatusOr, ValueAndError) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(42, *ok);
  StatusOr<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(7, err.value_or(7));
}

Status ReturnIfErrorHelper(bool fail) {
  REACTDB_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusOr, ReturnIfErrorMacro) {
  EXPECT_TRUE(ReturnIfErrorHelper(false).ok());
  EXPECT_EQ(StatusCode::kInternal, ReturnIfErrorHelper(true).code());
}

// --- Value ---------------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(ValueType::kBool, Value(true).type());
  EXPECT_EQ(ValueType::kInt64, Value(int64_t{5}).type());
  EXPECT_EQ(ValueType::kInt64, Value(5).type());  // int32 promotes
  EXPECT_EQ(ValueType::kDouble, Value(2.5).type());
  EXPECT_EQ(ValueType::kString, Value("hi").type());
  EXPECT_EQ(5, Value(int64_t{5}).AsInt64());
  EXPECT_DOUBLE_EQ(2.5, Value(2.5).AsDouble());
  EXPECT_EQ("hi", Value("hi").AsString());
}

TEST(Value, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.5), Value(int64_t{4}));
}

TEST(Value, OrderingAcrossTypes) {
  // NULL < BOOL < numeric < STRING
  EXPECT_LT(Value::Null(), Value(false));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{99}), Value("a"));
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
}

TEST(Value, RowCompareLexicographic) {
  Row a = {Value(int64_t{1}), Value("b")};
  Row b = {Value(int64_t{1}), Value("c")};
  Row c = {Value(int64_t{1})};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_GT(CompareRows(b, a), 0);
  EXPECT_EQ(0, CompareRows(a, a));
  EXPECT_LT(CompareRows(c, a), 0);  // prefix sorts first
}

// --- Key codec -----------------------------------------------------------

TEST(KeyCodec, RoundTripScalars) {
  for (const Value& v :
       {Value::Null(), Value(true), Value(false), Value(int64_t{0}),
        Value(int64_t{-1}), Value(int64_t{1} << 60), Value(-3.25), Value(0.0),
        Value(1e300), Value(""), Value("hello"),
        Value(std::string("nul\0byte", 8))}) {
    std::string encoded = EncodeKey({v});
    StatusOr<Row> decoded = DecodeKey(encoded);
    ASSERT_TRUE(decoded.ok()) << v;
    ASSERT_EQ(1u, decoded->size());
    EXPECT_EQ(v, (*decoded)[0]) << v;
  }
}

TEST(KeyCodec, RoundTripComposite) {
  Row key = {Value(int64_t{42}), Value("w_0001"), Value(-2.5), Value(true)};
  StatusOr<Row> decoded = DecodeKey(EncodeKey(key));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(0, CompareRows(key, *decoded));
}

// Property: encoded order == row order, across a randomized sweep.
class KeyCodecOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyCodecOrderTest, OrderPreserved) {
  Rng rng(GetParam());
  auto random_value = [&rng]() -> Value {
    switch (rng.NextInt(0, 3)) {
      case 0:
        return Value(rng.NextInt(-1000000, 1000000));
      case 1:
        return Value(rng.NextDouble() * 2000 - 1000);
      case 2:
        return Value(rng.NextString(0, 12));
      default:
        return Value(rng.NextBool(0.5));
    }
  };
  for (int trial = 0; trial < 250; ++trial) {
    Row a, b;
    int len = static_cast<int>(rng.NextInt(1, 3));
    for (int i = 0; i < len; ++i) {
      a.push_back(random_value());
      b.push_back(random_value());
    }
    int row_order = CompareRows(a, b);
    int enc_order = EncodeKey(a).compare(EncodeKey(b));
    if (row_order < 0) {
      EXPECT_LT(enc_order, 0) << RowToString(a) << " vs " << RowToString(b);
    } else if (row_order > 0) {
      EXPECT_GT(enc_order, 0) << RowToString(a) << " vs " << RowToString(b);
    } else {
      EXPECT_EQ(0, enc_order) << RowToString(a) << " vs " << RowToString(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyCodecOrderTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KeyCodec, Int64OrderDense) {
  std::string prev;
  for (int64_t i = -300; i <= 300; ++i) {
    std::string cur = EncodeKey({Value(i)});
    if (!prev.empty()) EXPECT_LT(prev, cur) << i;
    prev = cur;
  }
}

TEST(KeyCodec, StringWithEmbeddedZeroOrders) {
  std::string a = EncodeKey({Value(std::string("a\0a", 3))});
  std::string b = EncodeKey({Value(std::string("a\0b", 3))});
  std::string c = EncodeKey({Value("a")});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // "a" is a strict prefix
}

TEST(KeyCodec, PrefixSuccessorBounds) {
  std::string p = EncodeKey({Value("abc")});
  std::string succ = PrefixSuccessor(p);
  EXPECT_LT(p, succ);
  // A key extending the prefix is below the successor.
  EXPECT_LT(EncodeKey({Value("abc"), Value(int64_t{99})}), succ);
  EXPECT_TRUE(PrefixSuccessor("").empty());
  EXPECT_TRUE(PrefixSuccessor("\xff").empty());
}

TEST(KeyCodec, DecodeErrors) {
  EXPECT_FALSE(DecodeKey("\x03trunc").ok());
  EXPECT_FALSE(DecodeKey("\x7f").ok());
}

// --- Rng / Zipfian ---------------------------------------------------------

TEST(Rng, DeterministicWithSeed) {
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundsRespected) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t e = rng.NextIntExcluding(1, 4, 2);
    EXPECT_NE(2, e);
    EXPECT_GE(e, 1);
    EXPECT_LE(e, 4);
  }
}

TEST(Rng, NuRandInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NuRand(1023, 1, 3000, 259);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(Zipfian, UniformWhenThetaZero) {
  ZipfianGenerator zipf(100, 0.0, 1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Next()]++;
  int min = *std::min_element(counts.begin(), counts.end());
  int max = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(min, 100);  // roughly uniform: expected 200 each
  EXPECT_LT(max, 320);
}

class ZipfianSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianSkewTest, HeadProbabilityGrowsWithTheta) {
  double theta = GetParam();
  ZipfianGenerator zipf(10000, theta, 2);
  int head = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  double frac = static_cast<double>(head) / kDraws;
  if (theta >= 0.99) {
    EXPECT_GT(frac, 0.25) << "theta=" << theta;
  }
  if (theta >= 5.0) {
    EXPECT_GT(frac, 0.99) << "theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianSkewTest,
                         ::testing::Values(0.5, 0.99, 2.0, 5.0));

// --- Histogram / EpochStats -------------------------------------------------

TEST(Histogram, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(100u, h.count());
  EXPECT_DOUBLE_EQ(50.5, h.Mean());
  EXPECT_NEAR(50, h.Median(), 6);
  EXPECT_NEAR(99, h.Percentile(0.99), 12);
  EXPECT_EQ(1, h.min());
  EXPECT_EQ(100, h.max());
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.Add(10);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(2u, a.count());
  EXPECT_DOUBLE_EQ(20, a.Mean());
  EXPECT_EQ(30, a.max());
}

// Quantile is the one percentile implementation (Percentile and Median
// delegate to it): monotone in p, clamped to [min, max], p clamped to
// [0, 1], and 0 on an empty histogram.
TEST(Histogram, QuantileIsCanonicalAndClamped) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(0, empty.Quantile(0.5));

  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), h.Percentile(0.99));
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), h.Median());
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(0.999));
  EXPECT_DOUBLE_EQ(1, h.Quantile(-3)) << "p clamps low to min";
  EXPECT_DOUBLE_EQ(1000, h.Quantile(7)) << "p clamps high to max";
  EXPECT_NEAR(500, h.Quantile(0.5), 35);
  EXPECT_NEAR(990, h.Quantile(0.99), 70);
}

TEST(EpochStats, MeanAndDeviation) {
  EpochStats stats;
  stats.AddEpoch(100, 0, 1e6, 100 * 50.0);   // 100 tps, 50us
  stats.AddEpoch(200, 10, 1e6, 200 * 70.0);  // 200 tps, 70us
  EXPECT_DOUBLE_EQ(150, stats.MeanThroughputTps());
  EXPECT_DOUBLE_EQ(60, stats.MeanLatencyUs());
  EXPECT_GT(stats.StdDevThroughputTps(), 0);
  EXPECT_NEAR(10.0 / 310.0, stats.AbortRate(), 1e-9);
}

// --- Logging ---------------------------------------------------------------

TEST(Logging, ParseLogLevelIsCaseInsensitive) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(LogLevel::kDebug, level);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(LogLevel::kWarn, level);
  EXPECT_TRUE(ParseLogLevel("Error", &level));
  EXPECT_EQ(LogLevel::kError, level);
  EXPECT_TRUE(ParseLogLevel("2", &level));
  EXPECT_EQ(LogLevel::kWarn, level);

  level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(LogLevel::kError, level) << "failed parse leaves `out` alone";
}

TEST(Logging, EnvValueResolutionFlagsUnrecognized) {
  bool unrecognized = true;
  EXPECT_EQ(LogLevel::kInfo, LogLevelFromEnvValue(nullptr, &unrecognized));
  EXPECT_FALSE(unrecognized) << "unset is not an error";
  EXPECT_EQ(LogLevel::kInfo, LogLevelFromEnvValue("", &unrecognized));
  EXPECT_FALSE(unrecognized) << "empty is not an error";

  EXPECT_EQ(LogLevel::kDebug, LogLevelFromEnvValue("DEBUG", &unrecognized));
  EXPECT_FALSE(unrecognized);
  EXPECT_EQ(LogLevel::kError, LogLevelFromEnvValue("3", &unrecognized));
  EXPECT_FALSE(unrecognized);

  EXPECT_EQ(LogLevel::kInfo, LogLevelFromEnvValue("verbose", &unrecognized));
  EXPECT_TRUE(unrecognized) << "unknown values fall back to info and warn";
}

// --- Config ----------------------------------------------------------------

TEST(Config, ParseSectionsAndTypes) {
  auto config = Config::Parse(
      "# comment\n"
      "[database]\n"
      "deployment = shared-nothing\n"
      "containers = 4\n"
      "scale = 2.5\n"
      "verbose = true\n"
      "\n"
      "[executor]\n"
      "mpl = 8\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ("shared-nothing", config->GetString("database", "deployment"));
  EXPECT_EQ(4, config->GetInt("database", "containers"));
  EXPECT_DOUBLE_EQ(2.5, config->GetDouble("database", "scale"));
  EXPECT_TRUE(config->GetBool("database", "verbose"));
  EXPECT_EQ(8, config->GetInt("executor", "mpl"));
  EXPECT_EQ(99, config->GetInt("executor", "missing", 99));
  EXPECT_FALSE(config->Has("nothing", "here"));
}

TEST(Config, ParseErrors) {
  EXPECT_FALSE(Config::Parse("[unterminated\n").ok());
  EXPECT_FALSE(Config::Parse("keywithoutvalue\n").ok());
}

}  // namespace
}  // namespace reactdb

// Smoke test exercising the full stack on both runtimes.
#include <gtest/gtest.h>

#include "src/runtime/reactdb.h"

namespace reactdb {
namespace {

Proc Deposit(TxnContext& ctx, Row args) {
  // args: amount
  REACTDB_CO_ASSIGN_OR_RETURN(Row row, ctx.Get("account", {Value(int64_t{1})}));
  double balance = row[1].AsNumeric() + args[0].AsNumeric();
  REACTDB_CO_RETURN_IF_ERROR(
      ctx.Update("account", {Value(int64_t{1})}, {Value(int64_t{1}), Value(balance)}));
  co_return Value(balance);
}

Proc PayTo(TxnContext& ctx, Row args) {
  // args: target reactor, amount
  Future f = ctx.CallOn(args[0].AsString(), "deposit", {args[1]});
  ProcResult r = co_await f;
  REACTDB_CO_RETURN_IF_ERROR(r.status());
  co_return r.value();
}

ReactorDatabaseDef* MakeDef() {
  auto* def = new ReactorDatabaseDef();
  ReactorType& t = def->DefineType("Account");
  auto schema = SchemaBuilder("account")
                    .AddColumn("id", ValueType::kInt64)
                    .AddColumn("balance", ValueType::kDouble)
                    .SetKey({"id"})
                    .Build();
  t.AddSchema(schema.value());
  t.AddProcedure("deposit", &Deposit);
  t.AddProcedure("pay_to", &PayTo);
  EXPECT_TRUE(def->DeclareReactor("acct_a", "Account").ok());
  EXPECT_TRUE(def->DeclareReactor("acct_b", "Account").ok());
  return def;
}

Status Load(RuntimeBase* rt) {
  return rt->RunDirect([rt](SiloTxn& txn) -> Status {
    for (const char* name : {"acct_a", "acct_b"}) {
      auto table = rt->FindTable(name, "account");
      REACTDB_RETURN_IF_ERROR(table.status());
      Reactor* r = rt->FindReactor(name);
      REACTDB_RETURN_IF_ERROR(txn.Insert(
          *table, {Value(int64_t{1}), Value(100.0)}, r->container_id()));
    }
    return Status::OK();
  });
}

TEST(Smoke, ThreadRuntimeCrossContainer) {
  auto def = std::unique_ptr<ReactorDatabaseDef>(MakeDef());
  ThreadRuntime db;
  ASSERT_TRUE(db.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  ASSERT_TRUE(Load(&db).ok());
  ASSERT_TRUE(db.Start().ok());
  ProcResult r = db.Execute("acct_a", "pay_to", {Value("acct_b"), Value(42.0)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(142.0, r->AsNumeric());
  db.Stop();
}

TEST(Smoke, SimRuntimeCrossContainer) {
  auto def = std::unique_ptr<ReactorDatabaseDef>(MakeDef());
  SimRuntime db;
  ASSERT_TRUE(db.Bootstrap(def.get(), DeploymentConfig::SharedNothing(2)).ok());
  ASSERT_TRUE(Load(&db).ok());
  ProcResult r = db.Execute("acct_a", "pay_to", {Value("acct_b"), Value(42.0)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(142.0, r->AsNumeric());
  EXPECT_GT(db.events().now(), 0.0);
}

}  // namespace
}  // namespace reactdb

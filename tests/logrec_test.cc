// Unit tests for the durability wire format (src/log/log_record.h) and the
// per-executor LogShard: record round-trips across every value type,
// frame checksum rejection, torn-tail truncation, and shard collection
// semantics.
#include "src/log/log_record.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/log/log_shard.h"
#include "src/storage/tid.h"

namespace reactdb {
namespace {

using logrec::RedoRecord;
using logrec::RecordKind;

Row SampleRow() {
  return Row{Value(int64_t{-42}), Value(3.25), Value("hello\0world"),
             Value(true), Value::Null(),
             Value(std::nan("")),  // NaN must round-trip bit-exactly-enough
             Value(std::string("\xff\x00\x01", 3))};
}

std::string EncodeRecords() {
  std::string buf;
  Row row = SampleRow();
  logrec::AppendPut(&buf, 3, 1, "key-a", TidWord::Make(7, 5), row.data(),
                    static_cast<uint32_t>(row.size()));
  logrec::AppendDelete(&buf, 2, 0, "key-b", TidWord::Make(8, 1));
  logrec::AppendPut(&buf, 0, 2, std::string("k\0ey", 4),
                    TidWord::Make(9, 123), row.data(), 2);
  return buf;
}

std::vector<RedoRecord> DecodeAll(std::string_view payload, Status* status) {
  std::vector<RedoRecord> out;
  *status = logrec::DecodeRecords(payload, [&](RedoRecord&& r) -> Status {
    out.push_back(std::move(r));
    return Status::OK();
  });
  return out;
}

TEST(LogRecord, RecordRoundTrip) {
  Status st;
  std::vector<RedoRecord> recs = DecodeAll(EncodeRecords(), &st);
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(3u, recs.size());

  EXPECT_EQ(RecordKind::kPut, recs[0].kind);
  EXPECT_EQ(3u, recs[0].reactor);
  EXPECT_EQ(1u, recs[0].slot);
  EXPECT_EQ("key-a", recs[0].key);
  EXPECT_EQ(TidWord::Make(7, 5), recs[0].tid);
  EXPECT_EQ(7u, recs[0].epoch());
  Row row = SampleRow();
  ASSERT_EQ(row.size(), recs[0].row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i].type(), recs[0].row[i].type()) << "cell " << i;
    if (row[i].type() == ValueType::kDouble && std::isnan(row[i].AsDouble())) {
      EXPECT_TRUE(std::isnan(recs[0].row[i].AsDouble()));
    } else {
      EXPECT_EQ(0, row[i].Compare(recs[0].row[i])) << "cell " << i;
    }
  }

  EXPECT_EQ(RecordKind::kDelete, recs[1].kind);
  EXPECT_EQ("key-b", recs[1].key);
  EXPECT_TRUE(recs[1].row.empty());
  EXPECT_EQ(8u, recs[1].epoch());

  EXPECT_EQ(std::string("k\0ey", 4), recs[2].key);
  ASSERT_EQ(2u, recs[2].row.size());
}

TEST(LogRecord, FrameRoundTripAndScan) {
  std::string payload = EncodeRecords();
  std::string file;
  logrec::AppendFrame(&file, payload, 3, /*seal_epoch=*/6, /*max_epoch=*/9);
  logrec::AppendFrame(&file, "", 0, /*seal_epoch=*/11, /*max_epoch=*/9);

  size_t frames = 0;
  size_t records = 0;
  StatusOr<logrec::ScanResult> scan = logrec::ScanFrames(
      file, [&](const logrec::FrameInfo& f) -> Status {
        ++frames;
        Status st;
        records += DecodeAll(f.payload, &st).size();
        REACTDB_RETURN_IF_ERROR(st);
        return Status::OK();
      });
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(2u, frames);
  EXPECT_EQ(3u, records);
  EXPECT_EQ(2u, scan->frames);
  EXPECT_EQ(3u, scan->records);
  EXPECT_EQ(11u, scan->max_seal_epoch);
  EXPECT_EQ(9u, scan->max_record_epoch);
  EXPECT_EQ(file.size(), scan->valid_bytes);
}

TEST(LogRecord, ChecksumMismatchIsIOError) {
  std::string payload = EncodeRecords();
  std::string file;
  logrec::AppendFrame(&file, payload, 3, 6, 9);
  // Flip one payload byte: all bytes present, contents wrong — corruption,
  // not a torn tail.
  file[logrec::kFrameHeaderBytes + 10] ^= 0x40;
  StatusOr<logrec::ScanResult> scan = logrec::ScanFrames(file, nullptr);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(StatusCode::kIOError, scan.status().code());
}

TEST(LogRecord, BadMagicIsIOError) {
  std::string file(logrec::kFrameHeaderBytes, '\0');
  StatusOr<logrec::ScanResult> scan = logrec::ScanFrames(file, nullptr);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(StatusCode::kIOError, scan.status().code());
}

TEST(LogRecord, TornTailTruncatesSilently) {
  std::string payload = EncodeRecords();
  std::string file;
  logrec::AppendFrame(&file, payload, 3, 6, 9);
  size_t first_frame = file.size();
  logrec::AppendFrame(&file, payload, 3, 12, 15);

  // Every truncation point inside the second frame must keep the first
  // frame readable and report valid_bytes at the frame boundary.
  for (size_t cut : {file.size() - 1, first_frame + logrec::kFrameHeaderBytes,
                     first_frame + logrec::kFrameHeaderBytes / 2,
                     first_frame + 1}) {
    std::string torn = file.substr(0, cut);
    StatusOr<logrec::ScanResult> scan = logrec::ScanFrames(torn, nullptr);
    ASSERT_TRUE(scan.ok()) << "cut at " << cut << ": " << scan.status();
    EXPECT_EQ(1u, scan->frames) << "cut at " << cut;
    EXPECT_EQ(first_frame, scan->valid_bytes) << "cut at " << cut;
    EXPECT_EQ(6u, scan->max_seal_epoch);
  }
}

TEST(LogRecord, Crc32KnownVector) {
  // Standard CRC-32 ("123456789" -> 0xCBF43926) guards against quiet
  // polynomial/reflection regressions that would invalidate old logs.
  EXPECT_EQ(0xCBF43926u, logrec::Crc32("123456789"));
  EXPECT_EQ(0u, logrec::Crc32(""));
}

// --- Audit records (kTxnAudit, PR 9) ----------------------------------------

using logrec::AuditReadView;
using logrec::AuditRecord;
using logrec::AuditWriteView;

/// Mixed redo + audit stream with hostile contents: embedded-NUL keys, an
/// absent-bit observed word, an initial-version (0) observation, an empty
/// key, and a NaN cell in the neighboring redo row.
std::string EncodeMixedStream() {
  std::string buf;
  Row row = SampleRow();  // includes the NaN cell
  logrec::AppendPut(&buf, 3, 1, "key-a", TidWord::Make(7, 5), row.data(),
                    static_cast<uint32_t>(row.size()));
  static const std::string nul_key("k\0ey", 4);
  AuditReadView reads[3];
  reads[0].reactor = 3;
  reads[0].slot = 1;
  reads[0].key = nul_key.data();
  reads[0].key_size = static_cast<uint32_t>(nul_key.size());
  reads[0].observed = TidWord::WithAbsent(TidWord::Make(7, 5));
  reads[1].reactor = 0;
  reads[1].slot = 0;
  reads[1].key = "";
  reads[1].key_size = 0;
  reads[1].observed = 0;  // initial version: no writer
  reads[2].reactor = 1;
  reads[2].slot = 2;
  reads[2].key = "plain";
  reads[2].key_size = 5;
  reads[2].observed = TidWord::Make(6, 999);
  AuditWriteView writes[1];
  writes[0].reactor = 3;
  writes[0].slot = 1;
  writes[0].key = nul_key.data();
  writes[0].key_size = static_cast<uint32_t>(nul_key.size());
  logrec::AppendTxnAudit(&buf, TidWord::Make(7, 9), reads, 3, writes, 1);
  logrec::AppendDelete(&buf, 2, 0, "key-b", TidWord::Make(8, 1));
  // Read-only transaction: no writes.
  logrec::AppendTxnAudit(&buf, TidWord::Make(8, 2), reads, 1, nullptr, 0);
  return buf;
}

TEST(LogRecord, AuditRecordRoundTrip) {
  std::vector<RedoRecord> redos;
  std::vector<AuditRecord> audits;
  Status st = logrec::DecodeRecords(
      EncodeMixedStream(),
      [&](RedoRecord&& r) -> Status {
        redos.push_back(std::move(r));
        return Status::OK();
      },
      [&](AuditRecord&& a) -> Status {
        audits.push_back(std::move(a));
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(2u, redos.size());
  ASSERT_EQ(2u, audits.size());

  const AuditRecord& a = audits[0];
  EXPECT_EQ(TidWord::Make(7, 9), a.tid);
  EXPECT_EQ(7u, a.epoch());
  ASSERT_EQ(3u, a.reads.size());
  EXPECT_EQ(3u, a.reads[0].reactor);
  EXPECT_EQ(1u, a.reads[0].slot);
  EXPECT_EQ(std::string("k\0ey", 4), a.reads[0].key);
  EXPECT_EQ(TidWord::WithAbsent(TidWord::Make(7, 5)), a.reads[0].observed);
  EXPECT_TRUE(TidWord::IsAbsent(a.reads[0].observed))
      << "the absent bit must survive the round trip";
  EXPECT_TRUE(a.reads[1].key.empty());
  EXPECT_EQ(0u, a.reads[1].observed);
  EXPECT_EQ("plain", a.reads[2].key);
  EXPECT_EQ(TidWord::Make(6, 999), a.reads[2].observed);
  ASSERT_EQ(1u, a.writes.size());
  EXPECT_EQ(std::string("k\0ey", 4), a.writes[0].key);

  EXPECT_EQ(TidWord::Make(8, 2), audits[1].tid);
  EXPECT_EQ(8u, audits[1].epoch());
  EXPECT_TRUE(audits[1].writes.empty());
}

// The pre-audit decode path (recovery): a redo-only callback over a mixed
// stream surfaces exactly the redo records and skips audit records without
// erroring — old replay code recovers new segments, and segments without
// audit records decode unchanged.
TEST(LogRecord, MixedStreamDecodesWithRedoOnlyCallback) {
  Status st;
  std::vector<RedoRecord> recs = DecodeAll(EncodeMixedStream(), &st);
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(2u, recs.size());
  EXPECT_EQ(RecordKind::kPut, recs[0].kind);
  EXPECT_EQ(RecordKind::kDelete, recs[1].kind);
}

TEST(LogRecord, AuditFrameCrcRejectsCorruption) {
  std::string payload = EncodeMixedStream();
  std::string file;
  logrec::AppendFrame(&file, payload, 4, 8, 8);
  std::string good = file;
  // Flip a byte inside the audit record region: the frame CRC must refuse
  // the whole frame (corruption, not a torn tail).
  file[logrec::kFrameHeaderBytes + payload.size() / 2] ^= 0x01;
  StatusOr<logrec::ScanResult> scan = logrec::ScanFrames(file, nullptr);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(StatusCode::kIOError, scan.status().code());
  EXPECT_TRUE(logrec::ScanFrames(good, nullptr).ok());
}

// A truncated audit record *inside* a CRC-valid payload is a codec error,
// not silently-dropped data.
TEST(LogRecord, TruncatedAuditPayloadIsIOError) {
  std::string payload = EncodeMixedStream();
  for (size_t cut : {payload.size() - 1, payload.size() / 2}) {
    Status st = logrec::DecodeRecords(
        std::string_view(payload).substr(0, cut),
        [](RedoRecord&&) -> Status { return Status::OK(); },
        [](AuditRecord&&) -> Status { return Status::OK(); });
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
  }
}

// Torn tail at EVERY cut point of a mixed-frame file: the first frame stays
// readable, the torn second frame is dropped at the frame boundary.
TEST(LogRecord, AuditTornTailTruncatesAtEveryCutPoint) {
  std::string payload = EncodeMixedStream();
  std::string file;
  logrec::AppendFrame(&file, payload, 4, /*seal_epoch=*/8, /*max_epoch=*/8);
  size_t first_frame = file.size();
  logrec::AppendFrame(&file, payload, 4, /*seal_epoch=*/12, /*max_epoch=*/12);

  for (size_t cut = first_frame; cut < file.size(); ++cut) {
    std::string torn = file.substr(0, cut);
    StatusOr<logrec::ScanResult> scan = logrec::ScanFrames(torn, nullptr);
    ASSERT_TRUE(scan.ok()) << "cut at " << cut << ": " << scan.status();
    EXPECT_EQ(1u, scan->frames) << "cut at " << cut;
    EXPECT_EQ(first_frame, scan->valid_bytes) << "cut at " << cut;
    EXPECT_EQ(8u, scan->max_seal_epoch) << "cut at " << cut;
  }
}

TEST(LogShard, AppendTxnAuditAccountsLikeRedo) {
  log::LogShard shard(1024);
  Row row{Value(int64_t{1})};
  shard.AppendPut(0, 0, "a", TidWord::Make(4, 1), row.data(), 1);
  AuditReadView read;
  read.reactor = 0;
  read.slot = 0;
  read.key = "a";
  read.key_size = 1;
  read.observed = TidWord::Make(3, 7);
  shard.AppendTxnAudit(TidWord::Make(6, 2), &read, 1, nullptr, 0);
  EXPECT_EQ(6u, shard.max_epoch()) << "audit records advance the shard epoch";

  std::string out;
  log::LogShard::Collected got = shard.Collect(&out);
  EXPECT_EQ(2u, got.records) << "one redo + one audit record";
  EXPECT_EQ(6u, got.max_epoch);

  size_t audits = 0;
  Status st = logrec::DecodeRecords(
      out, [](RedoRecord&&) -> Status { return Status::OK(); },
      [&](AuditRecord&& a) -> Status {
        ++audits;
        EXPECT_EQ(TidWord::Make(6, 2), a.tid);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(1u, audits);
}

TEST(LogShard, CollectSwapsAndTracksEpochs) {
  log::LogShard shard(1024);
  EXPECT_FALSE(shard.HasData());
  Row row{Value(int64_t{1})};
  shard.AppendPut(0, 0, "a", TidWord::Make(4, 1), row.data(), 1);
  shard.AppendDelete(0, 0, "b", TidWord::Make(6, 2));
  EXPECT_TRUE(shard.HasData());
  EXPECT_EQ(6u, shard.max_epoch());

  std::string out;
  log::LogShard::Collected got = shard.Collect(&out);
  EXPECT_EQ(2u, got.records);
  EXPECT_EQ(6u, got.max_epoch);
  EXPECT_FALSE(out.empty());
  EXPECT_FALSE(shard.HasData());

  Status st;
  std::vector<RedoRecord> recs = DecodeAll(out, &st);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(2u, recs.size());
  EXPECT_EQ(RecordKind::kPut, recs[0].kind);
  EXPECT_EQ(RecordKind::kDelete, recs[1].kind);

  // A second collect is empty but still reports the all-time max epoch.
  std::string again;
  got = shard.Collect(&again);
  EXPECT_EQ(0u, got.records);
  EXPECT_EQ(6u, got.max_epoch);
  EXPECT_TRUE(again.empty());
}

}  // namespace
}  // namespace reactdb

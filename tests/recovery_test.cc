// Crash-recovery tests for the durability subsystem (src/log/): kill-point
// matrix (crash before fsync, torn segment tail, corrupt frame, crash
// mid-checkpoint), exact-state equivalence against a reference run
// truncated at the recovered durable epoch, secondary index rebuild,
// wait_durable semantics, checkpoint truncation, and TID re-seeding —
// on both runtimes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/log/durability.h"
#include "src/runtime/reactdb.h"
#include "src/util/logging.h"
#include "src/storage/record.h"
#include "src/storage/tid.h"
#include "src/workloads/smallbank/smallbank.h"

namespace reactdb {
namespace {

namespace fs = std::filesystem;
using client::Database;
using smallbank::CustomerName;

constexpr int64_t kCustomers = 8;
constexpr int kContainers = 2;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "reactdb_" + name;
  fs::remove_all(dir);
  return dir;
}

Database::Options SimDurable(const std::string& dir, bool auto_flush = true) {
  Database::Options o = Database::Sim();
  o.data_dir = dir;
  o.log_flush_interval_us = 0;  // flush "now" on the virtual clock
  o.log_auto_flush = auto_flush;
  return o;
}

/// Full state dump: every primary row and every secondary entry of every
/// table, in deterministic order. Two databases with equal dumps hold
/// exactly equal table contents *and* secondary indexes.
std::string DumpState(Database& db, const ReactorDatabaseDef& def) {
  std::string out;
  for (const std::string& name : def.ReactorNames()) {
    Reactor* reactor = db.FindReactor(name);
    const std::vector<Table*>& tables = reactor->bound_tables();
    for (size_t slot = 0; slot < tables.size(); ++slot) {
      Table* table = tables[slot];
      if (table == nullptr) continue;
      out += "== " + name + "/" + table->name() + "\n";
      Status s = db.RunDirect([&](SiloTxn& txn) -> Status {
        return txn.Scan(table, {}, {}, -1,
                        [&out](const Row& row) {
                          out += RowToString(row) + "\n";
                          return true;
                        },
                        reactor->container_id());
      });
      EXPECT_TRUE(s.ok()) << s;
      for (size_t i = 0; i < table->num_secondary_indexes(); ++i) {
        out += "-- index " + std::to_string(i) + "\n";
        table->secondary(i).Scan(
            "", "", [&out](const std::string& key, Record* rec) {
              RecordSnapshot snap = ReadRecord(*rec);
              if (snap.row == nullptr) return true;  // tombstone
              out += key + " -> " + RowToString(*snap.row) + "\n";
              return true;
            });
      }
    }
  }
  return out;
}

/// One deterministic committed deposit and its receipt.
struct Deposit {
  int64_t customer = 0;
  double amount = 0;
  uint64_t epoch = 0;
};

/// Runs `n` sequential transact_saving deposits and records each commit's
/// TID epoch (the unit the durable watermark seals).
std::vector<Deposit> RunDeposits(Database& db, int n, int first = 0) {
  std::vector<Deposit> log;
  auto session = db.CreateSession();
  for (int i = 0; i < n; ++i) {
    Deposit d;
    d.customer = (first + i) % kCustomers;
    d.amount = 1.0 + (first + i);
    ReactorId reactor = db.ResolveReactor(CustomerName(d.customer));
    client::TxnOutcome out = session->Execute(
        reactor, smallbank::kTransactSavingProc, {Value(d.amount)});
    EXPECT_TRUE(out.ok()) << out.status();
    d.epoch = TidWord::Epoch(out.commit_tid);
    log.push_back(d);
  }
  return log;
}

/// Reference state: a fresh volatile database with the deposit prefix of
/// epochs <= `durable` applied (deposits are sequential, and commit epochs
/// are monotone, so the epoch filter selects a prefix).
std::string ReferenceDump(const std::vector<Deposit>& deposits,
                          uint64_t durable) {
  ReactorDatabaseDef def;
  smallbank::BuildDef(&def, kCustomers);
  Database db;
  EXPECT_TRUE(
      db.Open(&def, DeploymentConfig::SharedNothing(kContainers),
              Database::Sim())
          .ok());
  EXPECT_TRUE(smallbank::Load(db.runtime(), kCustomers).ok());
  auto session = db.CreateSession();
  for (const Deposit& d : deposits) {
    if (d.epoch > durable) break;
    ReactorId reactor = db.ResolveReactor(CustomerName(d.customer));
    client::TxnOutcome out = session->Execute(
        reactor, smallbank::kTransactSavingProc, {Value(d.amount)});
    EXPECT_TRUE(out.ok()) << out.status();
  }
  session.reset();
  std::string dump = DumpState(db, def);
  db.Shutdown();
  return dump;
}

struct SmallbankRig {
  std::unique_ptr<ReactorDatabaseDef> def;
  std::unique_ptr<Database> db;

  explicit SmallbankRig(const Database::Options& options, bool load = true) {
    def = std::make_unique<ReactorDatabaseDef>();
    smallbank::BuildDef(def.get(), kCustomers);
    db = std::make_unique<Database>();
    open_status =
        db->Open(def.get(), DeploymentConfig::SharedNothing(kContainers),
                 options);
    if (open_status.ok() && load && !db->recovered()) {
      EXPECT_TRUE(smallbank::Load(db->runtime(), kCustomers).ok());
    }
  }
  Status open_status;
};

TEST(Recovery, CleanShutdownRecoversExactStateAndReseedsTids) {
  std::string dir = FreshDir("clean");
  std::string before;
  uint64_t last_commit_tid = 0;
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    EXPECT_FALSE(rig.db->recovered());
    RunDeposits(*rig.db, 40);
    auto session = rig.db->CreateSession();
    client::TxnOutcome last = session->Execute(
        rig.db->ResolveReactor(CustomerName(0)),
        smallbank::kTransactSavingProc, {Value(5.0)});
    ASSERT_TRUE(last.ok());
    last_commit_tid = last.commit_tid;
    before = DumpState(*rig.db, *rig.def);
    session.reset();
    rig.db->Shutdown();
  }
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    ASSERT_TRUE(rig.db->recovered());
    EXPECT_GT(rig.db->recovery().log_records_applied, 0u);
    EXPECT_EQ(before, DumpState(*rig.db, *rig.def));
    // TIDs re-seeded monotone: the first post-recovery commit must carry a
    // strictly larger TID (epoch past everything recovered).
    auto session = rig.db->CreateSession();
    client::TxnOutcome out = session->Execute(
        rig.db->ResolveReactor(CustomerName(1)),
        smallbank::kTransactSavingProc, {Value(1.0)});
    ASSERT_TRUE(out.ok());
    EXPECT_GT(TidWord::Tid(out.commit_tid), TidWord::Tid(last_commit_tid));
    EXPECT_GT(TidWord::Epoch(out.commit_tid), rig.db->recovery().max_epoch);
    session.reset();
    rig.db->Shutdown();
  }
}

TEST(Recovery, CrashBeforeFsyncRecoversExactlyTheDurablePrefix) {
  std::string dir = FreshDir("beforefsync");
  std::vector<Deposit> deposits;
  uint64_t durable_at_crash = 0;
  {
    SmallbankRig rig(SimDurable(dir, /*auto_flush=*/false));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    rig.db->WaitDurable();  // the bulk load itself must survive
    deposits = RunDeposits(*rig.db, 16);
    rig.db->WaitDurable();  // group-commit point: first 16 are durable
    std::vector<Deposit> lost = RunDeposits(*rig.db, 14, /*first=*/16);
    deposits.insert(deposits.end(), lost.begin(), lost.end());
    durable_at_crash = rig.db->durable_epoch();
    // The 14 deposits after the last WaitDurable sit in shard buffers that
    // never reached the disk — exactly the "crash before fsync" point.
    EXPECT_LT(durable_at_crash, deposits.back().epoch);
    rig.db->CrashForTest();
  }
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    ASSERT_TRUE(rig.db->recovered());
    EXPECT_EQ(durable_at_crash, rig.db->recovery().durable_epoch);
    EXPECT_EQ(ReferenceDump(deposits, durable_at_crash),
              DumpState(*rig.db, *rig.def));
    rig.db->Shutdown();
  }
}

TEST(Recovery, TornSegmentTailRecoversTheRemainingPrefix) {
  std::string dir = FreshDir("torntail");
  std::vector<Deposit> deposits;
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    deposits = RunDeposits(*rig.db, 24);
    rig.db->Shutdown();  // clean: everything durable
  }
  // Tear the tail of every container's last segment, as an interrupted
  // write() would: the last frame of each becomes unreadable and the
  // durable horizon retreats.
  for (const auto& entry : fs::directory_iterator(dir + "/log")) {
    fs::resize_file(entry.path(), fs::file_size(entry.path()) - 5);
  }
  uint64_t durable = 0;
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;  // not an error
    ASSERT_TRUE(rig.db->recovered());
    durable = rig.db->recovery().durable_epoch;
    EXPECT_LT(durable, deposits.back().epoch + 1);
    EXPECT_EQ(ReferenceDump(deposits, durable),
              DumpState(*rig.db, *rig.def));
    // Crash again right away. The retained segments still hold record
    // bytes *beyond* the torn seal (flushed before their epoch sealed)
    // that this recovery just dropped for atomicity; the recovery
    // checkpoint must have purged them, or the fresh seed seals would
    // resurrect them now and the history clients observed would change.
    rig.db->CrashForTest();
  }
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    ASSERT_TRUE(rig.db->recovered());
    EXPECT_EQ(ReferenceDump(deposits, durable),
              DumpState(*rig.db, *rig.def));
    rig.db->Shutdown();
  }
}

TEST(Recovery, CorruptFrameSurfacesIOError) {
  std::string dir = FreshDir("corrupt");
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    RunDeposits(*rig.db, 8);
    rig.db->Shutdown();
  }
  // Flip a byte provably inside a frame *payload* (all bytes still
  // present): that is corruption, not a crash artifact, and must fail
  // loudly instead of silently recovering partial state. (A flip inside a
  // frame header can read as a torn tail, which is tolerated — so the test
  // walks the headers to aim at payload bytes.)
  bool flipped = false;
  for (const auto& entry : fs::directory_iterator(dir + "/log")) {
    auto data_or = log::ReadFile(entry.path().string());
    ASSERT_TRUE(data_or.ok());
    std::string data = std::move(*data_or);
    size_t pos = 0;
    while (pos + logrec::kFrameHeaderBytes <= data.size()) {
      uint32_t len = 0;
      for (int b = 0; b < 4; ++b) {
        len |= static_cast<uint32_t>(
                   static_cast<uint8_t>(data[pos + 4 + static_cast<size_t>(b)]))
               << (8 * b);
      }
      if (len > 0 && pos + logrec::kFrameHeaderBytes + len <= data.size()) {
        data[pos + logrec::kFrameHeaderBytes + len / 2] ^= 0x20;
        ASSERT_TRUE(
            log::WriteFileSync(entry.path().string(), data).ok());
        flipped = true;
        break;
      }
      pos += logrec::kFrameHeaderBytes + len;
    }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped);
  {
    SmallbankRig rig(SimDurable(dir), /*load=*/false);
    ASSERT_FALSE(rig.open_status.ok());
    EXPECT_TRUE(rig.open_status.IsIOError()) << rig.open_status;
  }
}

TEST(Recovery, CheckpointTruncatesLogAndRecoversExactState) {
  std::string dir = FreshDir("checkpoint");
  std::string before;
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    RunDeposits(*rig.db, 20);
    log::CheckpointResult ckpt;
    ASSERT_TRUE(rig.db->Checkpoint(&ckpt).ok());
    EXPECT_GT(ckpt.rows, 0u);
    EXPECT_TRUE(fs::exists(ckpt.dir + "/MANIFEST"));
    RunDeposits(*rig.db, 12, /*first=*/20);
    before = DumpState(*rig.db, *rig.def);
    rig.db->Shutdown();
  }
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    ASSERT_TRUE(rig.db->recovered());
    EXPECT_GT(rig.db->recovery().checkpoint_rows, 0u);
    EXPECT_EQ(before, DumpState(*rig.db, *rig.def));
    rig.db->Shutdown();
  }
}

TEST(Recovery, CrashMidCheckpointIsIgnored) {
  std::string dir = FreshDir("midckpt");
  std::string before;
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    RunDeposits(*rig.db, 10);
    ASSERT_TRUE(rig.db->Checkpoint().ok());
    RunDeposits(*rig.db, 6, /*first=*/10);
    before = DumpState(*rig.db, *rig.def);
    rig.db->Shutdown();
  }
  // A checkpoint the crash interrupted: data present, no MANIFEST.
  fs::create_directories(dir + "/ckpt_99");
  ASSERT_TRUE(
      log::WriteFileSync(dir + "/ckpt_99/data.ckp", "half-written junk").ok());
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    EXPECT_EQ(before, DumpState(*rig.db, *rig.def));
    // The next successful checkpoint garbage-collects the artifact.
    ASSERT_TRUE(rig.db->Checkpoint().ok());
    EXPECT_FALSE(fs::exists(dir + "/ckpt_99"));
    rig.db->Shutdown();
  }
}

// A checkpoint roll must not overstate durability: when a commit's redo
// records are still only in a shard buffer (the thread-runtime race window
// between the checkpoint fence and the segment roll), the fresh segment's
// seed frame may only carry the container's *previous* seal. Staged at the
// manager level because the single-threaded simulator cannot interleave a
// commit with a running checkpoint.
TEST(Recovery, CheckpointRollDoesNotOverstateDurability) {
  std::string dir = FreshDir("rollseal");
  {
    EpochManager epochs;
    log::DurabilityOptions opts;
    opts.data_dir = dir;
    opts.auto_flush = false;
    log::DurabilityManager mgr(&epochs, /*num_containers=*/1,
                               /*executors_per_container=*/1, opts);
    ASSERT_TRUE(mgr.OpenStorage().ok());
    ASSERT_TRUE(mgr.StartActiveSegments().ok());
    // A commit appends at epoch 5, the clock moves on — the record is in
    // memory only.
    epochs.AdvanceTo(5);
    Row row{Value(int64_t{1}), Value(1.0)};
    mgr.shard(0)->AppendPut(0, 0, "key", TidWord::Make(5, 1), row.data(), 2);
    epochs.AdvanceTo(10);
    // Checkpoint roll hits exactly this window.
    std::string ckpt = mgr.NextCheckpointDir();
    fs::create_directories(ckpt);
    ASSERT_TRUE(mgr.OnCheckpointCommitted(/*ckpt_epoch=*/0, ckpt).ok());
    // Crash before any flush: the epoch-5 record dies with the buffers.
    mgr.Abandon();
  }
  {
    EpochManager epochs;
    log::DurabilityOptions opts;
    opts.data_dir = dir;
    log::DurabilityManager mgr(&epochs, 1, 1, opts);
    ASSERT_TRUE(mgr.OpenStorage().ok());
    // The recovered durable epoch must not cover the lost record's epoch —
    // a seed frame sealing min_active-1 (9) here would claim an epoch-5
    // record that never reached the disk.
    EXPECT_LT(mgr.recovered_durable_epoch(), 5u);
  }
}

// --- Secondary indexes + deletes, via a dedicated reactor type --------------

Proc Noop(TxnContext& ctx, Row args) {
  (void)ctx;
  (void)args;
  co_return Value(int64_t{0});
}

std::unique_ptr<ReactorDatabaseDef> LedgerDef() {
  auto def = std::make_unique<ReactorDatabaseDef>();
  ReactorType& type = def->DefineType("Ledger");
  type.AddSchema(SchemaBuilder("orders")
                     .AddColumn("id", ValueType::kInt64)
                     .AddColumn("owner", ValueType::kString)
                     .AddColumn("total", ValueType::kDouble)
                     .SetKey({"id"})
                     .AddIndex("by_owner", {"owner"})
                     .Build()
                     .value());
  type.AddProcedure("noop", &Noop);
  REACTDB_CHECK_OK(def->DeclareReactor("ledger", "Ledger"));
  return def;
}

TEST(Recovery, SecondaryIndexesAreRebuiltAndDeletesReplay) {
  std::string dir = FreshDir("secondary");
  auto def = LedgerDef();
  std::string before;
  {
    Database db;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(1), SimDurable(dir))
            .ok());
    Table* orders = *db.FindTable("ledger", "orders");
    ASSERT_TRUE(db.RunDirect([&](SiloTxn& txn) -> Status {
                    for (int64_t i = 0; i < 10; ++i) {
                      REACTDB_RETURN_IF_ERROR(txn.Insert(
                          orders,
                          {Value(i), Value(i % 2 ? "alice" : "bob"),
                           Value(10.0 * static_cast<double>(i))},
                          0));
                    }
                    return Status::OK();
                  }).ok());
    // Move an entry (update changes the indexed column) and delete a row —
    // both must replay, and the rebuilt index must reflect them.
    ASSERT_TRUE(db.RunDirect([&](SiloTxn& txn) -> Status {
                    REACTDB_RETURN_IF_ERROR(txn.Update(
                        orders, {Value(int64_t{4})},
                        {Value(int64_t{4}), Value("alice"), Value(99.0)}, 0));
                    return txn.Delete(orders, {Value(int64_t{7})}, 0);
                  }).ok());
    before = DumpState(db, *def);
    db.Shutdown();
  }
  {
    Database db;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(1), SimDurable(dir))
            .ok());
    ASSERT_TRUE(db.recovered());
    EXPECT_EQ(before, DumpState(db, *def));
    // Query through the rebuilt index: alice now owns 1,3,4,5,9 (4 moved
    // in, 7 deleted from bob's side).
    Table* orders = *db.FindTable("ledger", "orders");
    std::vector<int64_t> alice;
    ASSERT_TRUE(db.RunDirect([&](SiloTxn& txn) -> Status {
                    return txn.ScanSecondary(orders, 0, {Value("alice")}, -1,
                                             [&alice](const Row& row) {
                                               alice.push_back(
                                                   row[0].AsInt64());
                                               return true;
                                             },
                                             0);
                  }).ok());
    EXPECT_EQ((std::vector<int64_t>{1, 3, 4, 5, 9}), alice);
    // The deleted key must stay deleted.
    Status miss = db.RunDirect([&](SiloTxn& txn) -> Status {
      Row out;
      return txn.GetInto(orders, {Value(int64_t{7})}, &out, 0);
    });
    EXPECT_TRUE(miss.IsNotFound()) << miss;
    db.Shutdown();
  }
}

// --- Thread runtime: wait_durable survives a kill ----------------------------

TEST(Recovery, ThreadRuntimeWaitDurableSurvivesCrash) {
  std::string dir = FreshDir("threads");
  auto def = std::make_unique<ReactorDatabaseDef>();
  smallbank::BuildDef(def.get(), kCustomers);
  double expected = 0;
  {
    Database db;
    Database::Options o;  // threads
    o.data_dir = dir;
    o.log_flush_interval_us = 500;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(kContainers), o)
            .ok());
    ASSERT_FALSE(db.recovered());
    ASSERT_TRUE(smallbank::Load(db.runtime(), kCustomers).ok());
    auto session = db.CreateSession({.max_outstanding = 4,
                                     .wait_durable = true});
    for (int i = 0; i < 12; ++i) {
      client::TxnOutcome out = session->Execute(
          db.ResolveReactor(CustomerName(i % kCustomers)),
          smallbank::kTransactSavingProc, {Value(100.0)});
      ASSERT_TRUE(out.ok()) << out.status();
    }
    client::SessionStats stats = session->stats();
    EXPECT_EQ(12u, stats.committed);
    EXPECT_GT(stats.durable_waits, 0u);
    expected = 20000.0 * kCustomers + 12 * 100.0;
    session.reset();
    // Every Wait() above returned only after its epoch was durable, so a
    // crash right now must lose nothing.
    db.CrashForTest();
  }
  {
    Database db;
    Database::Options o;
    o.data_dir = dir;
    ASSERT_TRUE(
        db.Open(def.get(), DeploymentConfig::SharedNothing(kContainers), o)
            .ok());
    ASSERT_TRUE(db.recovered());
    double total = smallbank::TotalBalance(db.runtime(), kCustomers).value();
    EXPECT_NEAR(expected, total, 1e-6);
    db.Shutdown();
  }
}

// An injected fsync failure latches kIOError exactly like a real device:
// the manager halts, the durable watermark freezes, later commits still
// execute (volatile), and a fault-free reopen recovers exactly the durable
// prefix.
TEST(Recovery, InjectedFsyncFailureLatchesAndReopenRecoversDurablePrefix) {
  std::string dir = FreshDir("injfsync");
  std::vector<Deposit> deposits;
  uint64_t durable_at_halt = 0;
  {
    Database::Options o = SimDurable(dir);
    o.fault.enabled = true;
    o.fault.seed = 3;
    // Arm the site out of range so the hook is installed but silent; the
    // test re-arms it at the exact point it wants the device to die.
    o.fault.file_fsync.probability = 1;
    o.fault.file_fsync.after_n = 1'000'000'000;
    SmallbankRig rig(o);
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    deposits = RunDeposits(*rig.db, 16);
    rig.db->WaitDurable();  // the first 16 reach the disk
    EXPECT_FALSE(rig.db->durability()->halted());
    durable_at_halt = rig.db->durable_epoch();

    fault::SiteSpec die;
    die.probability = 1;
    die.max_fires = 1;
    rig.db->fault_injector()->Arm("log.fsync", die);
    std::vector<Deposit> lost = RunDeposits(*rig.db, 8, /*first=*/16);
    deposits.insert(deposits.end(), lost.begin(), lost.end());
    rig.db->WaitDurable();  // flush hits the injected fsync failure

    EXPECT_TRUE(rig.db->durability()->halted());
    Status io = rig.db->durability()->io_status();
    EXPECT_TRUE(io.IsIOError()) << io;
    EXPECT_NE(std::string::npos, io.ToString().find("injected fsync fault"))
        << io;
    EXPECT_EQ(1u, rig.db->fault_injector()->fires("log.fsync"));
    // The watermark froze at the latch; the post-fault deposits committed
    // but can never become durable.
    EXPECT_EQ(durable_at_halt, rig.db->durable_epoch());
    rig.db->Shutdown();
  }
  {
    SmallbankRig rig(SimDurable(dir));  // no faults on reopen
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    ASSERT_TRUE(rig.db->recovered());
    EXPECT_LE(rig.db->recovery().durable_epoch, durable_at_halt);
    EXPECT_EQ(ReferenceDump(deposits, rig.db->recovery().durable_epoch),
              DumpState(*rig.db, *rig.def));
    rig.db->Shutdown();
  }
}

// Injected ENOSPC with a short write: half the frame lands on disk before
// the error latches — a torn tail recovery must drop. Reopen recovers
// exactly the durable prefix.
TEST(Recovery, InjectedEnospcShortWriteLatchesAndReopenRecovers) {
  std::string dir = FreshDir("injenospc");
  std::vector<Deposit> deposits;
  {
    Database::Options o = SimDurable(dir);
    o.fault.enabled = true;
    o.fault.seed = 5;
    o.fault.short_write = true;  // torn prefix, as a real ENOSPC leaves
    o.fault.file_write.probability = 1;
    o.fault.file_write.after_n = 1'000'000'000;
    SmallbankRig rig(o);
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    deposits = RunDeposits(*rig.db, 16);
    rig.db->WaitDurable();

    fault::SiteSpec die;
    die.probability = 1;
    die.max_fires = 1;
    rig.db->fault_injector()->Arm("log.write", die);
    std::vector<Deposit> lost = RunDeposits(*rig.db, 8, /*first=*/16);
    deposits.insert(deposits.end(), lost.begin(), lost.end());
    rig.db->WaitDurable();  // flush hits the injected write failure

    EXPECT_TRUE(rig.db->durability()->halted());
    Status io = rig.db->durability()->io_status();
    EXPECT_TRUE(io.IsIOError()) << io;
    EXPECT_NE(std::string::npos,
              io.ToString().find("No space left on device"))
        << io;
    rig.db->Shutdown();
  }
  {
    SmallbankRig rig(SimDurable(dir));
    ASSERT_TRUE(rig.open_status.ok()) << rig.open_status;
    ASSERT_TRUE(rig.db->recovered());
    // The torn half-frame is invisible: recovery truncates it and lands on
    // the durable prefix exactly.
    EXPECT_EQ(ReferenceDump(deposits, rig.db->recovery().durable_epoch),
              DumpState(*rig.db, *rig.def));
    rig.db->Shutdown();
  }
}

}  // namespace
}  // namespace reactdb
